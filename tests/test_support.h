// Shared problem builders and bit-identity assertion helpers for the test
// suite. Complements test_util.h (cached fixtures): everything here is the
// configuration / comparison boilerplate that used to be copied per test
// file. Include this instead of test_util.h when a test needs builders or
// bit-identity checks; it re-exports the fixtures.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "core/hash.h"
#include "gpuicd/gpu_icd.h"
#include "recon/reconstructor.h"
#include "test_util.h"

namespace mbir::test {

// Hashing lives in core/hash.h (shared with the service's image_hash and
// the bench determinism asserts); re-exported here for existing tests.
using mbir::fnv1a64;

/// Bit-level fingerprint of an image (hashes the float bit patterns, so any
/// single-ULP drift changes it).
inline std::uint64_t imageHash(const Image2D& x) { return fnv1a64(x.flat()); }

/// GPU-ICD options sized for the tiny 32^2 test problem: 8-pixel SVs and
/// simulated caches scaled to the 48-view sinogram (DESIGN.md §1).
inline GpuIcdOptions tinyGpuOptions(GpuIcdOptions opt = {}) {
  opt.tunables.sv.sv_side = 8;  // fits the 32^2 test image
  opt.device = gsim::scaleCachesToProblem(
      opt.device, double(tinyGeometry().num_views) / 720.0);
  return opt;
}

/// reconstruct() config sized for the tiny test problem (any engine).
/// reconstruct() itself scales the simulated caches (scale_gpu_caches).
inline RunConfig tinyRunConfig(Algorithm algorithm,
                               double max_equits = 25.0) {
  RunConfig cfg;
  cfg.algorithm = algorithm;
  cfg.psv.sv.sv_side = 8;
  cfg.gpu.tunables.sv.sv_side = 8;
  cfg.max_equits = max_equits;
  return cfg;
}

inline void expectImagesBitIdentical(const Image2D& a, const Image2D& b) {
  ASSERT_EQ(a.flat().size(), b.flat().size());
  EXPECT_EQ(0, std::memcmp(a.flat().data(), b.flat().data(),
                           a.flat().size() * sizeof(float)));
}

inline void expectStatsBitIdentical(const gsim::KernelStats& a,
                                    const gsim::KernelStats& b) {
  EXPECT_EQ(a.svb_access_bytes, b.svb_access_bytes);
  EXPECT_EQ(a.svb_access_time_bytes, b.svb_access_time_bytes);
  EXPECT_EQ(a.svb_unique_bytes, b.svb_unique_bytes);
  EXPECT_EQ(a.amatrix_access_bytes, b.amatrix_access_bytes);
  EXPECT_EQ(a.amatrix_unique_bytes, b.amatrix_unique_bytes);
  EXPECT_EQ(a.amatrix_via_texture, b.amatrix_via_texture);
  EXPECT_EQ(a.desc_bytes, b.desc_bytes);
  EXPECT_EQ(a.smem_bytes, b.smem_bytes);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.atomic_ops, b.atomic_ops);
  EXPECT_EQ(a.atomic_ops_weighted, b.atomic_ops_weighted);
  EXPECT_EQ(a.l2_working_set_bytes, b.l2_working_set_bytes);
  EXPECT_EQ(a.imbalance_factor, b.imbalance_factor);
  EXPECT_EQ(a.grid_blocks, b.grid_blocks);
  EXPECT_EQ(a.launches, b.launches);
}

inline void expectGpuRunsBitIdentical(const GpuRunStats& sa, const Image2D& xa,
                                      const GpuRunStats& sb, const Image2D& xb) {
  expectImagesBitIdentical(xa, xb);
  EXPECT_EQ(sa.equits, sb.equits);
  EXPECT_EQ(sa.modeled_seconds, sb.modeled_seconds);
  EXPECT_EQ(sa.work.voxel_updates, sb.work.voxel_updates);
  EXPECT_EQ(sa.work.theta_elements, sb.work.theta_elements);
  EXPECT_EQ(sa.work.error_update_elements, sb.work.error_update_elements);
  expectStatsBitIdentical(sa.kernel_stats, sb.kernel_stats);
}

/// Full reconstruct() outcome comparison at the bit level: image, scalar
/// stats, and the whole convergence curve.
inline void expectRunResultsBitIdentical(const RunResult& a, const RunResult& b) {
  expectImagesBitIdentical(a.image, b.image);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.cancelled, b.cancelled);
  EXPECT_EQ(a.equits, b.equits);
  EXPECT_EQ(a.final_rmse_hu, b.final_rmse_hu);
  EXPECT_EQ(a.modeled_seconds, b.modeled_seconds);
  EXPECT_EQ(a.work.voxel_updates, b.work.voxel_updates);
  EXPECT_EQ(a.work.theta_elements, b.work.theta_elements);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].equits, b.curve[i].equits);
    EXPECT_EQ(a.curve[i].modeled_seconds, b.curve[i].modeled_seconds);
    EXPECT_EQ(a.curve[i].rmse_hu, b.curve[i].rmse_hu);
  }
}

}  // namespace mbir::test
