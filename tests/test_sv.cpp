// Tests for SuperVoxel machinery: grid partitioning, checkerboard groups,
// SVB bands, both SVB layouts, and the gather/delta-writeback protocol.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "core/rng.h"
#include "sv/supervoxel.h"
#include "sv/svb.h"
#include "test_util.h"

namespace mbir {
namespace {

class SvSideParam : public ::testing::TestWithParam<int> {};

TEST_P(SvSideParam, GridCoversEveryVoxelAtLeastOnce) {
  const int n = 32;
  SvGrid grid(n, {.sv_side = GetParam(), .boundary_overlap = 1});
  std::vector<int> cover(std::size_t(n) * std::size_t(n), 0);
  for (const SuperVoxel& sv : grid.all())
    for (int r = sv.row0; r < sv.row1; ++r)
      for (int c = sv.col0; c < sv.col1; ++c)
        cover[std::size_t(r) * std::size_t(n) + std::size_t(c)]++;
  for (int v : cover) EXPECT_GE(v, 1);
}

TEST_P(SvSideParam, CheckerboardGroupsShareNoVoxels) {
  const int n = 48;
  SvGrid grid(n, {.sv_side = GetParam(), .boundary_overlap = 1});
  std::vector<int> all(std::size_t(grid.count()));
  for (int i = 0; i < grid.count(); ++i) all[std::size_t(i)] = i;
  const auto groups = grid.checkerboardGroups(all);
  std::size_t total = 0;
  for (const auto& group : groups) {
    total += group.size();
    for (std::size_t i = 0; i < group.size(); ++i)
      for (std::size_t j = i + 1; j < group.size(); ++j)
        EXPECT_FALSE(grid.svsShareVoxels(group[i], group[j]))
            << "side=" << GetParam() << " svs " << group[i] << "," << group[j];
  }
  EXPECT_EQ(total, std::size_t(grid.count()));
}

INSTANTIATE_TEST_SUITE_P(Sides, SvSideParam, ::testing::Values(4, 7, 8, 13, 16, 31));

TEST(SvGrid, OverlapExtendsRanges) {
  SvGrid grid(32, {.sv_side = 8, .boundary_overlap = 2});
  const SuperVoxel& interior = grid.sv(1 * grid.gridCols() + 1);
  EXPECT_EQ(interior.row0, 8 - 2);
  EXPECT_EQ(interior.row1, 16 + 2);
  // Border SVs clip at the image edge.
  const SuperVoxel& corner = grid.sv(0);
  EXPECT_EQ(corner.row0, 0);
  EXPECT_EQ(corner.col0, 0);
}

TEST(SvGrid, AdjacentSvsShareBoundary) {
  SvGrid grid(32, {.sv_side = 8, .boundary_overlap = 1});
  EXPECT_TRUE(grid.svsShareVoxels(0, 1));
  EXPECT_TRUE(grid.svsShareVoxels(0, grid.gridCols()));
  EXPECT_FALSE(grid.svsShareVoxels(0, 2));
}

TEST(SvGrid, NoOverlapNoSharing) {
  SvGrid grid(32, {.sv_side = 8, .boundary_overlap = 0});
  EXPECT_FALSE(grid.svsShareVoxels(0, 1));
}

TEST(SvGrid, VoxelAtRoundTrips) {
  SvGrid grid(32, {.sv_side = 8, .boundary_overlap = 1});
  const SuperVoxel& sv = grid.sv(3);
  for (int k = 0; k < sv.numVoxels(); k += 5) {
    const int voxel = sv.voxelAt(k, 32);
    const int r = voxel / 32, c = voxel % 32;
    EXPECT_TRUE(sv.containsVoxel(r, c));
  }
}

TEST(SvGrid, RejectsBadOptions) {
  EXPECT_THROW(SvGrid(32, {.sv_side = 1, .boundary_overlap = 0}), Error);
  EXPECT_THROW(SvGrid(32, {.sv_side = 4, .boundary_overlap = 4}), Error);
}

TEST(SvGrid, CheckerboardGroupFormula) {
  SvGrid grid(64, {.sv_side = 8, .boundary_overlap = 1});
  for (const SuperVoxel& sv : grid.all()) {
    EXPECT_EQ(sv.checkerboardGroup(), (sv.grid_r % 2) * 2 + (sv.grid_c % 2));
    EXPECT_GE(sv.checkerboardGroup(), 0);
    EXPECT_LT(sv.checkerboardGroup(), 4);
  }
}

// ---------- SVB plans ----------

class SvbFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = test::tinyGeometry();
    A_ = test::cachedMatrix(g_);
    grid_ = std::make_unique<SvGrid>(g_.image_size,
                                     SvGridOptions{.sv_side = 8, .boundary_overlap = 1});
  }
  ParallelBeamGeometry g_;
  std::shared_ptr<const SystemMatrix> A_;
  std::unique_ptr<SvGrid> grid_;
};

TEST_F(SvbFixture, BandCoversEveryVoxelRun) {
  for (int s = 0; s < grid_->count(); ++s) {
    const SvbPlan plan(g_, grid_->sv(s));
    const SuperVoxel& sv = grid_->sv(s);
    for (int k = 0; k < sv.numVoxels(); ++k) {
      const std::size_t voxel = std::size_t(sv.voxelAt(k, g_.image_size));
      for (int v = 0; v < g_.num_views; ++v) {
        const auto& r = A_->run(voxel, v);
        if (r.count == 0) continue;
        EXPECT_GE(int(r.first_channel), plan.lo(v));
        EXPECT_LE(int(r.first_channel) + int(r.count), plan.lo(v) + plan.width(v));
      }
    }
  }
}

TEST_F(SvbFixture, PackedOffsetsAreCompact) {
  const SvbPlan plan(g_, grid_->sv(5));
  std::size_t expect = 0;
  for (int v = 0; v < plan.numViews(); ++v) {
    EXPECT_EQ(plan.packedOffset(v), expect);
    expect += std::size_t(plan.width(v));
  }
  EXPECT_EQ(plan.packedSize(), expect);
}

TEST_F(SvbFixture, PaddedWidthAlignedAndSufficient) {
  const SvbPlan plan(g_, grid_->sv(5));
  EXPECT_EQ(plan.paddedWidth() % plan.padAlign(), 0);
  EXPECT_GE(plan.paddedWidth(), plan.maxWidth());
}

TEST_F(SvbFixture, GrowPaddedWidthMonotone) {
  SvbPlan plan(g_, grid_->sv(5));
  const int before = plan.paddedWidth();
  plan.growPaddedWidth(before - 1);
  EXPECT_EQ(plan.paddedWidth(), before);
  plan.growPaddedWidth(before + 5);
  EXPECT_GE(plan.paddedWidth(), before + 5);
  EXPECT_EQ(plan.paddedWidth() % plan.padAlign(), 0);
}

class SvbLayoutParam : public ::testing::TestWithParam<SvbLayout> {};

TEST_P(SvbLayoutParam, GatherMatchesSource) {
  const auto g = test::tinyGeometry();
  const SvGrid grid(g.image_size, {.sv_side = 8, .boundary_overlap = 1});
  const SvbPlan plan(g, grid.sv(6));

  Sinogram src(g);
  Rng rng(9);
  for (float& v : src.flat()) v = float(rng.uniform());

  Svb svb(plan, GetParam());
  svb.gather(src);
  for (int v = 0; v < g.num_views; ++v)
    for (int c = plan.lo(v); c < plan.lo(v) + plan.width(v); ++c)
      EXPECT_EQ(svb.at(v, c), src(v, c));
}

TEST_P(SvbLayoutParam, ApplyDeltaMergesConcurrentChanges) {
  const auto g = test::tinyGeometry();
  const SvGrid grid(g.image_size, {.sv_side = 8, .boundary_overlap = 1});
  const SvbPlan plan(g, grid.sv(6));

  Sinogram global(g);
  for (float& v : global.flat()) v = 1.0f;

  Svb svb(plan, GetParam());
  svb.gather(global);
  Svb orig(plan, GetParam());
  std::memcpy(orig.raw().data(), svb.raw().data(),
              svb.raw().size() * sizeof(float));

  // Local updates in the SVB...
  svb.at(3, plan.lo(3) + 1) += 0.5f;
  // ...while another SV concurrently changed the same global cell.
  global(3, plan.lo(3) + 1) += 0.25f;

  svb.applyDeltaTo(global, orig);
  // Both deltas must survive (add-delta semantics, not overwrite).
  EXPECT_NEAR(global(3, plan.lo(3) + 1), 1.75f, 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Layouts, SvbLayoutParam,
                         ::testing::Values(SvbLayout::kPacked, SvbLayout::kPadded));

TEST_F(SvbFixture, PaddedRowsZeroOutsideBand) {
  const SvbPlan plan(g_, grid_->sv(5));
  Sinogram src(g_);
  for (float& v : src.flat()) v = 2.0f;
  Svb svb(plan, SvbLayout::kPadded);
  svb.gather(src);
  for (int v = 0; v < plan.numViews(); ++v) {
    const float* row = svb.rowData(v);
    for (int c = plan.width(v); c < plan.paddedWidth(); ++c)
      EXPECT_EQ(row[c], 0.0f) << "view " << v << " col " << c;
  }
}

TEST_F(SvbFixture, AtOrZeroOutsideBand) {
  const SvbPlan plan(g_, grid_->sv(5));
  Svb svb(plan, SvbLayout::kPadded);
  EXPECT_EQ(svb.atOrZero(0, 0) + svb.atOrZero(0, g_.num_channels - 1), 0.0f);
}

TEST_F(SvbFixture, AtThrowsOutsideBand) {
  const SvbPlan plan(g_, grid_->sv(5));
  Svb svb(plan, SvbLayout::kPacked);
  // Find a view whose band doesn't start at 0.
  for (int v = 0; v < plan.numViews(); ++v) {
    if (plan.lo(v) > 0) {
      EXPECT_THROW(svb.at(v, plan.lo(v) - 1), Error);
      return;
    }
  }
}

}  // namespace
}  // namespace mbir
