// Tests for the scanner/noise substrate and the MBIR prior models.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "phantom/analytic_projection.h"
#include "phantom/shepp_logan.h"
#include "prior/neighborhood.h"
#include "prior/prior.h"
#include "scan/noise.h"
#include "scan/scanner.h"
#include "test_util.h"

namespace mbir {
namespace {

// ---------- noise / scanner ----------

TEST(Noise, NoiselessModeIsExactLogTransform) {
  Sinogram ideal(4, 8);
  ideal(1, 2) = 1.5f;
  NoiseModel m;
  m.enable_noise = false;
  Rng rng(1);
  const auto out = applyNoise(ideal, m, rng);
  EXPECT_NEAR(out.y(1, 2), 1.5f, 1e-5f);
  EXPECT_NEAR(out.y(0, 0), 0.0f, 1e-6f);
  // Weight equals the expected photon count.
  EXPECT_NEAR(out.weights(1, 2), float(m.i0 * std::exp(-1.5)), 1.0f);
  EXPECT_NEAR(out.weights(0, 0), float(m.i0), 1.0f);
}

TEST(Noise, NoisyMeasurementsUnbiasedish) {
  Sinogram ideal(64, 64);
  for (float& v : ideal.flat()) v = 1.0f;
  NoiseModel m;
  m.i0 = 1e5;
  Rng rng(2);
  const auto out = applyNoise(ideal, m, rng);
  double acc = 0.0;
  for (float v : out.y.flat()) acc += double(v);
  EXPECT_NEAR(acc / double(out.y.size()), 1.0, 0.005);
}

TEST(Noise, WeightsTrackDose) {
  Sinogram ideal(8, 8);
  for (float& v : ideal.flat()) v = 2.0f;
  NoiseModel lo, hi;
  lo.i0 = 1e4;
  hi.i0 = 1e6;
  Rng r1(3), r2(3);
  const auto wl = applyNoise(ideal, lo, r1).weights;
  const auto wh = applyNoise(ideal, hi, r2).weights;
  double sl = 0, sh = 0;
  for (std::size_t i = 0; i < wl.flat().size(); ++i) {
    sl += double(wl.flat()[i]);
    sh += double(wh.flat()[i]);
  }
  EXPECT_GT(sh, sl * 50.0);  // ~100x more photons
}

TEST(Noise, PhotonStarvationClamped) {
  Sinogram ideal(1, 1);
  ideal(0, 0) = 50.0f;  // opaque: lambda ~ 0
  NoiseModel m;
  Rng rng(4);
  const auto out = applyNoise(ideal, m, rng);
  EXPECT_TRUE(std::isfinite(out.y(0, 0)));
  EXPECT_GE(out.weights(0, 0), 1.0f);
}

TEST(Scanner, ProducesConsistentShapes) {
  const auto g = test::tinyGeometry();
  const auto scan = simulateScan(modifiedSheppLogan(10.0), g);
  EXPECT_EQ(scan.y.views(), g.num_views);
  EXPECT_EQ(scan.weights.channels(), g.num_channels);
  EXPECT_EQ(scan.ground_truth.size(), g.image_size);
  // Rays through the object attenuate: y > 0 somewhere.
  EXPECT_GT(scan.y.sumSquares(), 0.0);
}

TEST(Scanner, SeedChangesNoiseOnly) {
  const auto g = test::tinyGeometry();
  const auto p = modifiedSheppLogan(10.0);
  const auto a = simulateScan(p, g, {}, 1);
  const auto b = simulateScan(p, g, {}, 2);
  EXPECT_EQ(a.ground_truth.rmsDiff(b.ground_truth), 0.0);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.y.flat().size(); ++i)
    diff += std::abs(double(a.y.flat()[i]) - double(b.y.flat()[i]));
  EXPECT_GT(diff, 0.0);
}

// ---------- neighbourhood ----------

TEST(Neighborhood, WeightsNormalized) {
  double sum = 0.0;
  for (const auto& n : neighborhood8()) sum += n.b;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Neighborhood, DiagonalLighterThanEdge) {
  double edge = 0, diag = 0;
  for (const auto& n : neighborhood8()) {
    if (n.dr != 0 && n.dc != 0)
      diag = n.b;
    else
      edge = n.b;
  }
  EXPECT_NEAR(diag * std::sqrt(2.0), edge, 1e-12);
}

TEST(Neighborhood, BorderVisitsOnlyInBounds) {
  Image2D img(4);
  int count = 0;
  forEachNeighbor(img, 0, 0, [&](float, double) { ++count; });
  EXPECT_EQ(count, 3);
  count = 0;
  forEachNeighbor(img, 2, 2, [&](float, double) { ++count; });
  EXPECT_EQ(count, 8);
}

TEST(Neighborhood, ZeroSkipPredicate) {
  Image2D img(8);
  EXPECT_TRUE(allNeighborsZero(img, 4, 4));
  img(4, 5) = 1.0f;
  EXPECT_FALSE(allNeighborsZero(img, 4, 4));  // neighbour nonzero
  EXPECT_FALSE(allNeighborsZero(img, 4, 5));  // voxel itself nonzero
  EXPECT_TRUE(allNeighborsZero(img, 0, 0));
}

// ---------- priors ----------

TEST(QuadraticPrior, DerivativeIsInfluence) {
  QuadraticPrior p(0.01);
  for (double d : {-0.02, -0.001, 0.0, 0.005, 0.03}) {
    const double h = 1e-7;
    const double numeric = (p.potential(d + h) - p.potential(d - h)) / (2 * h);
    EXPECT_NEAR(numeric, p.influence(d), 1e-5);
  }
}

TEST(QuadraticPrior, SurrogateCoeffConstant) {
  QuadraticPrior p(0.01);
  EXPECT_DOUBLE_EQ(p.surrogateCoeff(0.0), p.surrogateCoeff(0.5));
  EXPECT_DOUBLE_EQ(p.surrogateCoeff(0.1), 1.0 / (2.0 * 0.01 * 0.01));
}

class QggmrfParam : public ::testing::TestWithParam<double> {};

TEST_P(QggmrfParam, InfluenceMatchesNumericDerivative) {
  QggmrfPrior p(8e-4, 1.2, 1.0);
  const double d = GetParam();
  const double h = std::max(1e-9, std::abs(d) * 1e-5);
  const double numeric = (p.potential(d + h) - p.potential(d - h)) / (2 * h);
  EXPECT_NEAR(numeric, p.influence(d), std::abs(p.influence(d)) * 1e-3 + 1e-9);
}

TEST_P(QggmrfParam, SurrogateMajorizes) {
  // rho(u + t) <= rho(u) + rho'(u) t + coeff(u) t^2 — the symmetric-bound
  // property that guarantees monotone ICD descent.
  QggmrfPrior p(8e-4, 1.2, 1.0);
  const double u = GetParam();
  const double c = p.surrogateCoeff(u);
  for (double t : {-2.0 * u, -0.5 * u, 0.3e-3, -1e-3, 2e-3, 5e-3}) {
    const double surrogate = p.potential(u) + p.influence(u) * t + c * t * t;
    EXPECT_GE(surrogate + 1e-15, p.potential(u + t))
        << "u=" << u << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Deltas, QggmrfParam,
                         ::testing::Values(-5e-3, -1e-3, -1e-4, 1e-6, 1e-4,
                                           8e-4, 3e-3, 1e-2));

TEST(QggmrfPrior, QuadraticNearZero) {
  QggmrfPrior p(8e-4, 1.2, 1.0);
  const double s2 = 8e-4 * 8e-4;
  const double d = 1e-14;
  EXPECT_NEAR(p.potential(d), d * d / (2 * s2), d * d / s2 * 0.01);
  EXPECT_NEAR(p.surrogateCoeff(0.0), 1.0 / (2 * s2), 1e-6 / s2);
}

TEST(QggmrfPrior, EdgePreservingTail) {
  // For |d| >> T sigma the potential grows like |d|^q (q < 2), so the
  // influence growth slows: rho'(10 Tsigma) < 10 * rho'(Tsigma).
  QggmrfPrior p(8e-4, 1.2, 1.0);
  EXPECT_LT(p.influence(8e-3), 10.0 * p.influence(8e-4));
}

TEST(QggmrfPrior, SymmetricPotential) {
  QggmrfPrior p(8e-4, 1.2, 1.0);
  for (double d : {1e-4, 1e-3, 1e-2})
    EXPECT_DOUBLE_EQ(p.potential(d), p.potential(-d));
}

TEST(QggmrfPrior, RejectsBadParams) {
  EXPECT_THROW(QggmrfPrior(0.0, 1.2, 1.0), Error);
  EXPECT_THROW(QggmrfPrior(1e-3, 2.5, 1.0), Error);
  EXPECT_THROW(QggmrfPrior(1e-3, 1.2, -1.0), Error);
}

TEST(QggmrfPrior, MonotoneInfluence) {
  QggmrfPrior p(8e-4, 1.2, 1.0);
  double prev = 0.0;
  for (double d = 1e-5; d < 2e-2; d *= 1.5) {
    const double inf = p.influence(d);
    EXPECT_GT(inf, prev) << "d=" << d;
    prev = inf;
  }
}

}  // namespace
}  // namespace mbir
