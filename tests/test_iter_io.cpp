// Tests for the non-regularized iterative baselines (SIRT/ART, paper §7)
// and the image I/O module.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/error.h"
#include "core/hounsfield.h"
#include "geom/projector.h"
#include "io/image_io.h"
#include "iter/art.h"
#include "iter/sirt.h"
#include "phantom/analytic_projection.h"
#include "phantom/ellipse.h"
#include "phantom/rasterize.h"
#include "recon/metrics.h"
#include "test_util.h"

namespace mbir {
namespace {

// A simple noiseless disc problem both solvers must nail.
struct DiscCase {
  ParallelBeamGeometry g = test::tinyGeometry();
  EllipsePhantom phantom;
  Sinogram y{1, 1};
  Image2D truth{1};
  std::shared_ptr<const SystemMatrix> A;

  DiscCase() {
    phantom.ellipses.push_back({0.0, 0.0, 8.0, 6.0, 0.4, 0.02});
    A = test::cachedMatrix(g);
    y = analyticProject(phantom, g);
    truth = rasterize(phantom, g);
  }
};

DiscCase& discCase() {
  static DiscCase c;
  return c;
}

TEST(Sirt, ResidualDecreasesMonotonically) {
  auto& c = discCase();
  std::vector<double> residuals;
  SirtOptions opt;
  opt.iterations = 20;
  opt.on_iteration = [&](int, const Image2D&, double rn) {
    residuals.push_back(rn);
  };
  sirtReconstruct(*c.A, c.y, opt);
  ASSERT_EQ(residuals.size(), 20u);
  for (std::size_t i = 1; i < residuals.size(); ++i)
    EXPECT_LE(residuals[i], residuals[i - 1] * (1.0 + 1e-9)) << i;
}

TEST(Sirt, RecoversDisc) {
  auto& c = discCase();
  SirtOptions opt;
  opt.iterations = 80;
  const Image2D x = sirtReconstruct(*c.A, c.y, opt);
  EXPECT_LT(flatRegionRmseHu(x, c.truth), 60.0);
  // Interior value close to the disc attenuation.
  EXPECT_NEAR(x(c.g.image_size / 2, c.g.image_size / 2), 0.02f, 0.002f);
}

TEST(Sirt, NonNegativeOutput) {
  auto& c = discCase();
  SirtOptions opt;
  opt.iterations = 10;
  const Image2D x = sirtReconstruct(*c.A, c.y, opt);
  for (float v : x.flat()) EXPECT_GE(v, 0.0f);
}

TEST(Sirt, RejectsBadOptions) {
  auto& c = discCase();
  SirtOptions opt;
  opt.relaxation = 2.5;
  EXPECT_THROW(sirtReconstruct(*c.A, c.y, opt), Error);
  opt = SirtOptions{};
  opt.iterations = 0;
  EXPECT_THROW(sirtReconstruct(*c.A, c.y, opt), Error);
}

TEST(RowMajorSystem, TransposeIsConsistent) {
  auto& c = discCase();
  const RowMajorSystem rows(*c.A);
  EXPECT_EQ(rows.nnz(), c.A->nnz());
  // Spot-check: every column entry appears in the matching row.
  const std::size_t voxel = 17 * 32 + 14;
  c.A->forEachEntry(voxel, [&](int v, int ch, float w) {
    bool found = false;
    for (const auto& e : rows.row(v, ch))
      if (e.voxel == voxel && e.weight == w) found = true;
    EXPECT_TRUE(found) << "view " << v << " ch " << ch;
  });
}

TEST(RowMajorSystem, RowNormsMatch) {
  auto& c = discCase();
  const RowMajorSystem rows(*c.A);
  for (int v = 0; v < c.g.num_views; v += 7)
    for (int ch = 0; ch < c.g.num_channels; ch += 11) {
      double norm = 0.0;
      for (const auto& e : rows.row(v, ch))
        norm += double(e.weight) * double(e.weight);
      EXPECT_NEAR(rows.rowNormSquared(v, ch), norm, 1e-12);
    }
}

TEST(Art, RecoversDisc) {
  auto& c = discCase();
  ArtOptions opt;
  opt.sweeps = 12;
  const Image2D x = artReconstruct(*c.A, c.y, opt);
  EXPECT_LT(flatRegionRmseHu(x, c.truth), 80.0);
  EXPECT_NEAR(x(c.g.image_size / 2, c.g.image_size / 2), 0.02f, 0.003f);
}

TEST(Art, ReducesResidual) {
  auto& c = discCase();
  ArtOptions few, many;
  few.sweeps = 1;
  many.sweeps = 8;
  const double r1 = residualNorm(*c.A, c.y, artReconstruct(*c.A, c.y, few));
  const double r8 = residualNorm(*c.A, c.y, artReconstruct(*c.A, c.y, many));
  EXPECT_LT(r8, r1);
}

TEST(Art, DeterministicForSeed) {
  auto& c = discCase();
  ArtOptions opt;
  opt.sweeps = 2;
  const Image2D a = artReconstruct(*c.A, c.y, opt);
  const Image2D b = artReconstruct(*c.A, c.y, opt);
  EXPECT_EQ(a.rmsDiff(b), 0.0);
}

TEST(Art, MbirBeatsNonRegularizedOnNoisyData) {
  // On noisy data, the regularized method should win in flat regions —
  // the core §7 claim.
  const auto& problem = test::tinyProblem();
  const Image2D& truth = problem.scan().ground_truth;
  ArtOptions art_opt;
  art_opt.sweeps = 8;
  const Image2D art = artReconstruct(problem.matrix(), problem.scan().y, art_opt);
  const Image2D& mbir = test::tinyGolden();
  EXPECT_LT(flatRegionRmseHu(mbir, truth), flatRegionRmseHu(art, truth));
}

// ---------- image I/O ----------

TEST(ImageIo, RawFloatRoundTrip) {
  Image2D img(16);
  for (int r = 0; r < 16; ++r)
    for (int c = 0; c < 16; ++c) img(r, c) = float(r * 100 + c) * 1e-4f;
  const std::string path = ::testing::TempDir() + "gpumbir_img.raw";
  writeRawFloat(img, path);
  const Image2D back = readRawFloat(path, 16);
  EXPECT_EQ(img.rmsDiff(back), 0.0);
  std::remove(path.c_str());
}

TEST(ImageIo, RawFloatShortReadThrows) {
  Image2D img(8);
  const std::string path = ::testing::TempDir() + "gpumbir_short.raw";
  writeRawFloat(img, path);
  EXPECT_THROW(readRawFloat(path, 16), Error);
  std::remove(path.c_str());
}

TEST(ImageIo, PgmHasValidHeaderAndSize) {
  Image2D img(8, float(kMuWaterPerMm));
  const std::string path = ::testing::TempDir() + "gpumbir_img.pgm";
  writePgm(img, path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {};
  ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
  EXPECT_EQ(std::string(magic), "P5");
  std::fseek(f, 0, SEEK_END);
  // Header "P5\n8 8\n65535\n" is 13 bytes + 8*8*2 payload.
  EXPECT_EQ(std::ftell(f), 13 + 8 * 8 * 2);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(ImageIo, WindowClampsExtremes) {
  Image2D img(4);
  img(0, 0) = 1.0f;   // absurdly dense -> white
  img(0, 1) = 0.0f;   // air -> black
  const std::string path = ::testing::TempDir() + "gpumbir_win.pgm";
  writePgm(img, path, {0.0, 100.0});
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 13, SEEK_SET);  // past the "P5\n4 4\n65535\n"-style header
  unsigned char px[4];
  ASSERT_EQ(std::fread(px, 1, 4, f), 4u);
  EXPECT_EQ(px[0], 0xff);  // first pixel saturated high
  EXPECT_EQ(px[1], 0xff);
  EXPECT_EQ(px[2], 0x00);  // second pixel saturated low
  EXPECT_EQ(px[3], 0x00);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(ImageIo, SinogramPgmWrites) {
  Sinogram s(6, 9);
  s(2, 3) = 1.0f;
  const std::string path = ::testing::TempDir() + "gpumbir_sino.pgm";
  writeSinogramPgm(s, path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

// ---------- flat-region metric ----------

TEST(Metrics, FlatRegionExcludesEdges) {
  Image2D truth(16);
  for (int r = 0; r < 16; ++r)
    for (int c = 0; c < 8; ++c) truth(r, c) = 0.02f;  // half-plane edge
  Image2D img = truth;
  // Corrupt only the edge column: flat metric must ignore it.
  for (int r = 0; r < 16; ++r) img(r, 8) = 0.05f;
  EXPECT_NEAR(flatRegionRmseHu(img, truth), 0.0, 1e-9);
  EXPECT_GT(flatRegionFraction(truth), 0.3);
}

TEST(Metrics, FlatRegionSeesUniformNoise) {
  Image2D truth(16), img(16);
  Rng rng(4);
  for (float& v : img.flat()) v = float(rng.uniform() * 1e-3);
  EXPECT_GT(flatRegionRmseHu(img, truth), 1.0);
}

TEST(Metrics, AllEdgesThrows) {
  Image2D truth(8);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) truth(r, c) = float(r * 8 + c);  // no flat area
  Image2D img = truth;
  EXPECT_THROW(flatRegionRmseHu(img, truth), Error);
}

}  // namespace
}  // namespace mbir
