// Tests for phantoms: ellipse algebra, Shepp-Logan, baggage generator,
// rasterization and analytic projection.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/hounsfield.h"
#include "phantom/analytic_projection.h"
#include "phantom/baggage.h"
#include "phantom/ellipse.h"
#include "phantom/rasterize.h"
#include "phantom/shepp_logan.h"
#include "test_util.h"

namespace mbir {
namespace {

TEST(Ellipse, ContainsCenterAndRespectsAxes) {
  Ellipse e{1.0, 2.0, 3.0, 1.5, 0.0, 1.0};
  EXPECT_TRUE(e.contains(1.0, 2.0));
  EXPECT_TRUE(e.contains(3.9, 2.0));
  EXPECT_FALSE(e.contains(4.1, 2.0));
  EXPECT_TRUE(e.contains(1.0, 3.4));
  EXPECT_FALSE(e.contains(1.0, 3.6));
}

TEST(Ellipse, RotationMovesExtent) {
  Ellipse e{0.0, 0.0, 4.0, 1.0, std::numbers::pi / 2, 1.0};  // long axis now y
  EXPECT_TRUE(e.contains(0.0, 3.9));
  EXPECT_FALSE(e.contains(3.9, 0.0));
}

TEST(Ellipse, CircleChordIsExact) {
  // Circle radius r: chord at offset t is 2 sqrt(r^2 - t^2).
  Ellipse c{0.0, 0.0, 5.0, 5.0, 0.0, 1.0};
  for (double theta : {0.0, 0.7, 2.1}) {
    for (double t : {0.0, 2.0, 4.0, 4.9}) {
      EXPECT_NEAR(c.chordLength(theta, t), 2.0 * std::sqrt(25.0 - t * t), 1e-9);
    }
    EXPECT_DOUBLE_EQ(c.chordLength(theta, 5.1), 0.0);
  }
}

TEST(Ellipse, ChordOfOffsetCircleShifts) {
  Ellipse c{3.0, 0.0, 2.0, 2.0, 0.0, 1.0};
  // At theta = 0, t measures x: chord peaks at t = 3.
  EXPECT_NEAR(c.chordLength(0.0, 3.0), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(c.chordLength(0.0, 0.9), 0.0);
}

TEST(Ellipse, ChordIntegralEqualsArea) {
  // Integral over t of the chord = ellipse area = pi a b, any angle.
  Ellipse e{1.0, -2.0, 3.0, 1.5, 0.6, 1.0};
  for (double theta : {0.0, 0.5, 1.3}) {
    double acc = 0.0;
    const double dt = 0.002;
    for (double t = -8.0; t <= 8.0; t += dt) acc += e.chordLength(theta, t) * dt;
    EXPECT_NEAR(acc, std::numbers::pi * 3.0 * 1.5, 0.01);
  }
}

TEST(EllipsePhantom, ValuesSuperpose) {
  EllipsePhantom p;
  p.ellipses.push_back({0, 0, 5, 5, 0, 0.02});
  p.ellipses.push_back({0, 0, 2, 2, 0, 0.01});
  EXPECT_NEAR(p.valueAt(0, 0), 0.03, 1e-12);
  EXPECT_NEAR(p.valueAt(3, 0), 0.02, 1e-12);
  EXPECT_NEAR(p.valueAt(6, 0), 0.0, 1e-12);
}

TEST(EllipsePhantom, BoundingRadius) {
  EllipsePhantom p;
  p.ellipses.push_back({3.0, 4.0, 2.0, 1.0, 0.0, 1.0});  // center at r=5
  EXPECT_NEAR(p.boundingRadius(), 7.0, 1e-12);
}

TEST(SheppLogan, StructureAndScale) {
  const auto p = sheppLogan(20.0);
  ASSERT_EQ(p.ellipses.size(), 10u);
  EXPECT_NEAR(p.boundingRadius(), 20.0, 0.5);
  // Skull (first ellipse) is the densest single contribution.
  EXPECT_GT(p.ellipses[0].value, 0.0);
  // Interior (ventricle region) attenuation must be below skull value.
  EXPECT_LT(p.valueAt(0.0, 0.0), p.ellipses[0].value);
  EXPECT_GT(p.valueAt(0.0, 0.0), 0.0);
}

TEST(SheppLogan, ModifiedHasWaterBrain) {
  const auto p = modifiedSheppLogan(20.0);
  // Inside the head, outside features: 1.0 - 0.8 = 0.2 x mu_water.
  const double v = p.valueAt(-10.0, -5.0);
  EXPECT_NEAR(v, 0.2 * kMuWaterPerMm, 0.15 * kMuWaterPerMm);
}

TEST(Baggage, DeterministicPerSeedAndIndex) {
  const auto a = makeBaggagePhantom(99, 5);
  const auto b = makeBaggagePhantom(99, 5);
  ASSERT_EQ(a.ellipses.size(), b.ellipses.size());
  for (std::size_t i = 0; i < a.ellipses.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ellipses[i].cx, b.ellipses[i].cx);
    EXPECT_DOUBLE_EQ(a.ellipses[i].value, b.ellipses[i].value);
  }
}

TEST(Baggage, DifferentIndicesDiffer) {
  const auto a = makeBaggagePhantom(99, 5);
  const auto b = makeBaggagePhantom(99, 6);
  bool differs = a.ellipses.size() != b.ellipses.size();
  if (!differs) differs = a.ellipses[1].cx != b.ellipses[1].cx;
  EXPECT_TRUE(differs);
}

class BaggageSweep : public ::testing::TestWithParam<int> {};

TEST_P(BaggageSweep, ContentInsideFieldRadius) {
  BaggageConfig cfg;
  cfg.field_radius_mm = 40.0;
  const auto p = makeBaggagePhantom(7, GetParam(), cfg);
  EXPECT_GE(p.ellipses.size(), std::size_t(1 + cfg.min_objects));
  EXPECT_LE(p.boundingRadius(), cfg.field_radius_mm * 1.3);
  for (const auto& e : p.ellipses) EXPECT_GT(e.value, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Cases, BaggageSweep, ::testing::Range(0, 20));

TEST(Baggage, MaterialsLibrarySane) {
  const auto& mats = baggageMaterials();
  EXPECT_GE(mats.size(), 4u);
  for (const auto& m : mats) {
    EXPECT_GT(m.mu_per_mm, 0.0);
    EXPECT_LT(m.mu_per_mm, 0.2);
    EXPECT_FALSE(m.name.empty());
  }
}

TEST(Rasterize, UniformDiscValues) {
  const auto g = test::tinyGeometry();
  EllipsePhantom p;
  p.ellipses.push_back({0, 0, 8, 8, 0, 0.02});
  const Image2D img = rasterize(p, g, 3);
  const int c = g.image_size / 2;
  EXPECT_NEAR(img(c, c), 0.02f, 1e-6f);
  EXPECT_EQ(img(0, 0), 0.0f);
}

TEST(Rasterize, SupersamplingSmoothsEdges) {
  const auto g = test::tinyGeometry();
  EllipsePhantom p;
  p.ellipses.push_back({0, 0, 8, 8, 0, 0.02});
  const Image2D hard = rasterize(p, g, 1);
  const Image2D soft = rasterize(p, g, 4);
  // Supersampled edge pixels take intermediate values.
  bool found_partial = false;
  for (float v : soft.flat())
    if (v > 0.002f && v < 0.018f) found_partial = true;
  EXPECT_TRUE(found_partial);
  // Total mass approximately preserved between the two.
  double m1 = 0, m2 = 0;
  for (float v : hard.flat()) m1 += v;
  for (float v : soft.flat()) m2 += v;
  EXPECT_NEAR(m1, m2, m2 * 0.05);
}

TEST(AnalyticProjection, MatchesDirectLineIntegral) {
  const auto g = test::tinyGeometry();
  EllipsePhantom p;
  p.ellipses.push_back({2.0, -1.0, 6.0, 4.0, 0.8, 0.02});
  const Sinogram y = analyticProject(p, g);
  // Compare a few entries against the mid-channel line integral (the
  // aperture average differs only at edges).
  for (int v = 0; v < g.num_views; v += 9) {
    const int c = g.num_channels / 2;
    const double t = (double(c) - g.centerChannel()) * g.channel_spacing_mm;
    EXPECT_NEAR(y(v, c), p.lineIntegral(g.angle(v), t), 0.01);
  }
}

TEST(AnalyticProjection, EmptyPhantomIsZero) {
  const auto g = test::tinyGeometry();
  const Sinogram y = analyticProject(EllipsePhantom{}, g);
  EXPECT_DOUBLE_EQ(y.sumSquares(), 0.0);
}

}  // namespace
}  // namespace mbir
