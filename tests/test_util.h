// Shared fixtures for the gpumbir test suite.
//
// System matrices are expensive to build, so tests share cached instances
// per geometry (computed once per process).
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "geom/system_matrix.h"
#include "recon/problem_setup.h"
#include "recon/reconstructor.h"
#include "recon/suite.h"

namespace mbir::test {

/// Tiny geometry for unit tests.
inline ParallelBeamGeometry tinyGeometry() {
  ParallelBeamGeometry g;
  g.num_views = 48;
  g.num_channels = 64;
  g.image_size = 32;
  g.pixel_size_mm = 0.8;
  g.channel_spacing_mm = 0.5;
  return g;
}

/// Slightly larger geometry for integration tests.
inline ParallelBeamGeometry smallGeometry() {
  ParallelBeamGeometry g;
  g.num_views = 72;
  g.num_channels = 96;
  g.image_size = 48;
  g.pixel_size_mm = 0.8;
  g.channel_spacing_mm = 0.5;
  return g;
}

/// Cached system matrix for a geometry (keyed by shape).
inline std::shared_ptr<const SystemMatrix> cachedMatrix(
    const ParallelBeamGeometry& g) {
  static std::mutex mu;
  static std::map<std::tuple<int, int, int>, std::shared_ptr<const SystemMatrix>>
      cache;
  std::lock_guard lock(mu);
  const auto key = std::make_tuple(g.num_views, g.num_channels, g.image_size);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  auto A = std::make_shared<const SystemMatrix>(SystemMatrix::compute(g));
  cache[key] = A;
  return A;
}

/// A cached, fully-set-up baggage problem on the tiny geometry.
inline const OwnedProblem& tinyProblem() {
  static const OwnedProblem problem = [] {
    SuiteConfig cfg;
    cfg.geometry = tinyGeometry();
    Suite suite(cfg);
    return suite.makeCase(0);
  }();
  return problem;
}

/// A cached golden image for tinyProblem().
inline const Image2D& tinyGolden() {
  static const Image2D golden = computeGolden(tinyProblem(), 30.0);
  return golden;
}

}  // namespace mbir::test
