// Tests for PSV-ICD (Alg. 2) and GPU-ICD (Alg. 3): functional equivalence
// with the sequential reference, flag ablations, conflict estimators.
#include <gtest/gtest.h>

#include <cmath>

#include "core/hounsfield.h"
#include "gpuicd/conflicts.h"
#include "gpuicd/gpu_icd.h"
#include "gpuicd/tunables.h"
#include "icd/convergence.h"
#include "geom/projector.h"
#include "icd/cost.h"
#include "psv/psv_icd.h"
#include "test_support.h"

namespace mbir {
namespace {

// Shared small-problem fixture: run each engine to a fixed equit budget and
// compare against the cached golden image.
class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    problem_ = &test::tinyProblem();
    golden_ = &test::tinyGolden();
  }

  PsvRunStats runPsv(PsvIcdOptions opt, double max_equits, Image2D& x_out) {
    x_out = problem_->fbpInitialImage();
    Sinogram e = problem_->initialError(x_out);
    PsvIcd icd(problem_->view(), opt);
    return icd.run(x_out, e, [&](const PsvIterationInfo& info) {
      return info.equits < max_equits;
    });
  }

  GpuRunStats runGpu(GpuIcdOptions opt, double max_equits, Image2D& x_out) {
    x_out = problem_->fbpInitialImage();
    Sinogram e = problem_->initialError(x_out);
    GpuIcd icd(problem_->view(), test::tinyGpuOptions(std::move(opt)));
    return icd.run(x_out, e, [&](const GpuIterationInfo& info) {
      return info.equits < max_equits;
    });
  }

  const OwnedProblem* problem_;
  const Image2D* golden_;
};

TEST_F(EngineFixture, PsvConvergesToGolden) {
  Image2D x;
  PsvIcdOptions opt;
  opt.sv.sv_side = 8;
  runPsv(opt, 12.0, x);
  EXPECT_LT(rmseHu(x, *golden_), 10.0);
}

TEST_F(EngineFixture, PsvSingleThreadDeterministic) {
  PsvIcdOptions opt;
  opt.sv.sv_side = 8;
  opt.num_threads = 1;
  Image2D a, b;
  runPsv(opt, 4.0, a);
  runPsv(opt, 4.0, b);
  EXPECT_EQ(a.rmsDiff(b), 0.0);
}

TEST_F(EngineFixture, PsvMultiThreadMatchesSingleThreadClosely) {
  PsvIcdOptions opt;
  opt.sv.sv_side = 8;
  opt.num_threads = 1;
  Image2D single;
  runPsv(opt, 6.0, single);
  opt.num_threads = 4;
  Image2D multi;
  runPsv(opt, 6.0, multi);
  // Thread interleaving on shared boundaries perturbs the trajectory but
  // both land at the same optimum neighbourhood.
  EXPECT_LT(rmseHu(single, multi), 6.0);
}

TEST_F(EngineFixture, PsvDecreasesCost) {
  const Problem p = problem_->view();
  Image2D x = problem_->fbpInitialImage();
  Sinogram e = problem_->initialError(x);
  const double before = computeCostFromScratch(p, x).total();
  PsvIcdOptions opt;
  opt.sv.sv_side = 8;
  PsvIcd icd(p, opt);
  icd.run(x, e, [&](const PsvIterationInfo& info) { return info.equits < 5.0; });
  EXPECT_LT(computeCostFromScratch(p, x).total(), before);
}

TEST_F(EngineFixture, PsvErrorSinogramIntegrity) {
  const Problem p = problem_->view();
  Image2D x = problem_->fbpInitialImage();
  Sinogram e = problem_->initialError(x);
  PsvIcdOptions opt;
  opt.sv.sv_side = 8;
  PsvIcd icd(p, opt);
  icd.run(x, e, [&](const PsvIterationInfo& info) { return info.equits < 5.0; });
  const Sinogram fresh = errorSinogram(p.A, p.y, x);
  double worst = 0.0;
  for (std::size_t i = 0; i < fresh.flat().size(); ++i)
    worst = std::max(worst, std::abs(double(fresh.flat()[i]) - double(e.flat()[i])));
  EXPECT_LT(worst, 5e-3);
}

TEST_F(EngineFixture, PsvWorkCountersConsistent) {
  Image2D x;
  PsvIcdOptions opt;
  opt.sv.sv_side = 8;
  const auto stats = runPsv(opt, 3.0, x);
  EXPECT_GT(stats.work.voxel_updates, 0u);
  EXPECT_GE(stats.work.voxels_visited, stats.work.voxel_updates);
  EXPECT_GT(stats.work.svs_processed, 0u);
  EXPECT_EQ(stats.work.lock_acquisitions, 2 * stats.work.svs_processed);
  EXPECT_GT(stats.work.svb_gather_elements, 0u);
}

TEST_F(EngineFixture, GpuConvergesToGolden) {
  Image2D x;
  runGpu({}, 14.0, x);
  EXPECT_LT(rmseHu(x, *golden_), 10.0);
}

TEST_F(EngineFixture, GpuMatchesSequentialFixpoint) {
  Image2D x;
  runGpu({}, 14.0, x);
  // Same optimization problem -> same optimum (different trajectories).
  Image2D seq = *golden_;
  EXPECT_LT(rmseHu(x, seq), 10.0);
}

TEST_F(EngineFixture, NaiveLayoutMatchesTransformedExactly) {
  // With quantization off, the naive (run-walk) and transformed (chunk-walk)
  // kernels compute identical sums in identical order.
  GpuIcdOptions a;
  a.flags.quantize_amatrix = false;
  GpuIcdOptions b = a;
  b.flags.transformed_layout = false;
  Image2D xa, xb;
  runGpu(a, 4.0, xa);
  runGpu(b, 4.0, xb);
  EXPECT_LT(xa.rmsDiff(xb) * kHuPerMu, 1e-3);
}

TEST_F(EngineFixture, QuantizationErrorSmall) {
  GpuIcdOptions a;  // quantized by default
  GpuIcdOptions b;
  b.flags.quantize_amatrix = false;
  Image2D xa, xb;
  runGpu(a, 8.0, xa);
  runGpu(b, 8.0, xb);
  // Paper §4.3.1: 8-bit normalized A loses no visible quality.
  EXPECT_LT(rmseHu(xa, xb), 5.0);
}

TEST_F(EngineFixture, GpuErrorSinogramIntegrity) {
  const Problem p = problem_->view();
  Image2D x = problem_->fbpInitialImage();
  Sinogram e = problem_->initialError(x);
  GpuIcdOptions opt;
  opt.tunables.sv.sv_side = 8;
  opt.flags.quantize_amatrix = false;  // exact A so e stays y - A x
  GpuIcd icd(p, opt);
  icd.run(x, e, [&](const GpuIterationInfo& info) { return info.equits < 5.0; });
  const Sinogram fresh = errorSinogram(p.A, p.y, x);
  double worst = 0.0;
  for (std::size_t i = 0; i < fresh.flat().size(); ++i)
    worst = std::max(worst, std::abs(double(fresh.flat()[i]) - double(e.flat()[i])));
  EXPECT_LT(worst, 5e-3);
}

struct FlagCase {
  const char* name;
  OptimFlags flags;
};

class FlagAblation : public EngineFixture,
                     public ::testing::WithParamInterface<int> {};

TEST_P(FlagAblation, EveryFlagComboStillConverges) {
  // Toggle one optimization off at a time (Table 3's protocol) — every
  // variant must still reach the solution; only modeled time may differ.
  OptimFlags flags;
  switch (GetParam()) {
    case 0: flags.read_svb_as_double = false; break;
    case 1: flags.spill_registers_to_smem = false; break;
    case 2: flags.exploit_intra_sv = false; break;
    case 3: flags.dynamic_voxel_distribution = false; break;
    case 4: flags.batch_threshold = false; break;
    case 5: flags.amatrix_via_texture = false; break;
    case 6: flags.quantize_amatrix = false; break;
    case 7: flags.transformed_layout = false; break;
  }
  GpuIcdOptions opt;
  opt.flags = flags;
  Image2D x;
  const auto stats = runGpu(opt, 14.0, x);
  EXPECT_LT(rmseHu(x, *golden_), 10.0) << "flag case " << GetParam();
  EXPECT_GT(stats.modeled_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Flags, FlagAblation, ::testing::Range(0, 8));

TEST_F(EngineFixture, IntraSvOffIsSlowerModeled) {
  // Use an intra-SV degree proportionate to the tiny SV (8 blocks on a
  // ~100-voxel SV; 40 would drown in modeled atomic contention on the
  // narrow test-scale bands — the full-scale 6.25x lives in bench/table3).
  GpuIcdOptions on, off;
  on.tunables.threadblocks_per_sv = 8;
  off.tunables.threadblocks_per_sv = 8;
  off.flags.exploit_intra_sv = false;
  Image2D x;
  const auto s_on = runGpu(on, 6.0, x);
  const auto s_off = runGpu(off, 6.0, x);
  // Total modeled time is diluted by fixed launch overheads at this tiny
  // scale; the update kernel itself shows the effect clearly.
  EXPECT_GT(s_off.modeled_seconds, s_on.modeled_seconds * 1.15);
  EXPECT_GT(s_off.per_kernel.at("mbir_update").seconds,
            s_on.per_kernel.at("mbir_update").seconds * 1.5);
}

TEST_F(EngineFixture, GpuEquitsAtLeastPsvEquits) {
  // Batch-snapshot staleness makes GPU-ICD need >= the equits PSV-ICD
  // needs (paper: 5.9 vs 4.8).
  Image2D x;
  PsvIcdOptions popt;
  popt.sv.sv_side = 8;
  x = problem_->fbpInitialImage();
  Sinogram e = problem_->initialError(x);
  PsvIcd psv(problem_->view(), popt);
  double psv_equits = 1e9;
  psv.run(x, e, [&](const PsvIterationInfo& info) {
    if (rmseHu(info.x, *golden_) < 10.0) {
      psv_equits = info.equits;
      return false;
    }
    return info.equits < 20.0;
  });

  GpuIcdOptions gopt;
  gopt.tunables.sv.sv_side = 8;
  Image2D gx = problem_->fbpInitialImage();
  Sinogram ge = problem_->initialError(gx);
  GpuIcd gpu(problem_->view(), gopt);
  double gpu_equits = 1e9;
  gpu.run(gx, ge, [&](const GpuIterationInfo& info) {
    if (rmseHu(info.x, *golden_) < 10.0) {
      gpu_equits = info.equits;
      return false;
    }
    return info.equits < 20.0;
  });

  ASSERT_LT(psv_equits, 1e9);
  ASSERT_LT(gpu_equits, 1e9);
  EXPECT_GE(gpu_equits, psv_equits * 0.8);  // not dramatically fewer
}

// ---------- conflict / imbalance estimators ----------

TEST(Conflicts, IntraSvGrowsWithConcurrency) {
  const auto g = test::tinyGeometry();
  auto A = test::cachedMatrix(g);
  SvGrid grid(g.image_size, {.sv_side = 8, .boundary_overlap = 1});
  SvbPlan plan(g, grid.sv(5));
  const double c1 = intraSvConflictMultiplier(plan, *A, 1);
  const double c8 = intraSvConflictMultiplier(plan, *A, 8);
  const double c40 = intraSvConflictMultiplier(plan, *A, 40);
  EXPECT_DOUBLE_EQ(c1, 1.0);
  EXPECT_GT(c8, c1);
  EXPECT_GT(c40, c8);
}

TEST(Conflicts, SmallerSvMoreIntraConflict) {
  const auto g = test::tinyGeometry();
  auto A = test::cachedMatrix(g);
  SvGrid small(g.image_size, {.sv_side = 4, .boundary_overlap = 1});
  SvGrid big(g.image_size, {.sv_side = 16, .boundary_overlap = 1});
  // Compare interior SVs at matching concurrency.
  SvbPlan sp(g, small.sv(small.gridCols() + 1));
  SvbPlan bp(g, big.sv(0));
  EXPECT_GT(intraSvConflictMultiplier(sp, *A, 16),
            intraSvConflictMultiplier(bp, *A, 16));
}

TEST(Conflicts, InterSvOverlappingBands) {
  const auto g = test::tinyGeometry();
  SvGrid grid(g.image_size, {.sv_side = 8, .boundary_overlap = 1});
  // All SVs of one image overlap heavily in the sinogram.
  std::vector<SvbPlan> plans;
  for (int i = 0; i < 4; ++i) plans.emplace_back(g, grid.sv(i));
  std::vector<const SvbPlan*> batch;
  for (const auto& p : plans) batch.push_back(&p);
  const double c = interSvConflictMultiplier(batch, g.num_channels);
  EXPECT_GT(c, 1.0);
  EXPECT_LE(c, 4.0);
  // A single SV has no inter-SV conflicts.
  EXPECT_DOUBLE_EQ(interSvConflictMultiplier({batch[0]}, g.num_channels), 1.0);
}

TEST(Imbalance, StaticPartitionDetectsSkew) {
  // All work in the first quarter: 4 blocks -> max/mean = 4.
  std::vector<int> work(100, 0);
  for (int i = 0; i < 25; ++i) work[std::size_t(i)] = 10;
  EXPECT_NEAR(staticPartitionImbalance(work, 4), 4.0, 1e-9);
  // Uniform work: balanced.
  std::vector<int> uniform(100, 5);
  EXPECT_NEAR(staticPartitionImbalance(uniform, 4), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(staticPartitionImbalance(uniform, 1), 1.0);
}

TEST(Tunables, ValidationCatchesBadValues) {
  GpuTunables t;
  t.threads_per_block = 100;  // not a multiple of 32
  EXPECT_THROW(t.validate(), Error);
  t = GpuTunables{};
  t.sv_fraction = 0.0;
  EXPECT_THROW(t.validate(), Error);
  t = GpuTunables{};
  EXPECT_NO_THROW(t.validate());
}

TEST(Tunables, FootprintFollowsSpillFlag) {
  OptimFlags f;
  EXPECT_EQ(updateKernelFootprint(f).regs_per_thread, 32);
  f.spill_registers_to_smem = false;
  EXPECT_EQ(updateKernelFootprint(f).regs_per_thread, 44);
}

}  // namespace
}  // namespace mbir
