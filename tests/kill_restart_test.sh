#!/usr/bin/env bash
# Crash-recovery smoke test for the store lane (DESIGN.md §14): SIGKILL a
# recon_server mid-load, restart it on the same --wal-dir/--cache-dir, and
# assert
#   * every job admitted before the kill completes exactly once (the
#     restart recovers the WAL's pending set; a third incarnation finds
#     nothing left to recover),
#   * deterministic-lane work is bit-identical across incarnations,
#   * a duplicate submit after the restart is served from the result cache
#     without dispatching (reconctl --json reports cache_hit, exit 0).
#
#   usage: kill_restart_test.sh <path-to-reconctl> <path-to-recon_server>
set -u

RECONCTL="${1:?usage: kill_restart_test.sh <reconctl> <recon_server>}"
RECON_SERVER="${2:?usage: kill_restart_test.sh <reconctl> <recon_server>}"

TMP="$(mktemp -d)"
WAL="$TMP/wal"
CACHE="$TMP/cache"
SERVER_PID=""
FAILURES=0

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1"
  FAILURES=$((FAILURES + 1))
}

# jget <file> <python-expr over d>  — pull one value out of a JSON document.
jget() {
  python3 -c "import json,sys; d=json.load(open(sys.argv[1])); print($2)" "$1"
}

start_server() { # start_server <logfile>
  local log="$1"
  rm -f "$TMP/port"
  "$RECON_SERVER" --devices 1 --size 48 --views 64 --channels 64 \
    --golden-equits 4 --max-equits 4 --wal-dir "$WAL" --cache-dir "$CACHE" \
    --port-file "$TMP/port" >"$log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$TMP/port" ] && return 0
    sleep 0.1
  done
  echo "FAIL: server never wrote its port file"
  cat "$log"
  exit 1
}
PORT_ARGS=(--port-file "$TMP/port")

# ---- incarnation 1: build a backlog, then die without warning -------------
start_server "$TMP/server1.log"

# Baseline deterministic run: finished (and cached) before the crash.
"$RECONCTL" submit "${PORT_ARGS[@]}" --deterministic --max-equits 3 \
  --name detbase --wait --json >"$TMP/detbase.json" \
  || fail "baseline det submit"
DET_HASH="$(jget "$TMP/detbase.json" "d['image_hash']")"
[ -n "$DET_HASH" ] || fail "baseline det run has no image hash"

# Backlog on the single device: distinct budgets = distinct cache keys, so
# none of these can be served from the cache — they must all really run.
for EQ in 5 6 7; do
  "$RECONCTL" submit "${PORT_ARGS[@]}" --max-equits "$EQ" --name "load$EQ" \
    >/dev/null || fail "submit load$EQ"
done
"$RECONCTL" submit "${PORT_ARGS[@]}" --deterministic --max-equits 3 \
  --name detagain >/dev/null || fail "submit detagain"

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""
echo "ok: killed incarnation 1 with a backlog admitted"

# ---- incarnation 2: recover, serve a duplicate from cache, drain ----------
start_server "$TMP/server2.log"
PENDING="$(grep -o 'recovered [0-9]* pending' "$TMP/server2.log" |
  grep -o '[0-9]*')"
if [ -z "$PENDING" ] || [ "$PENDING" -lt 1 ]; then
  fail "restart recovered no pending jobs (got '${PENDING:-none}')"
  cat "$TMP/server2.log"
else
  echo "ok: restart recovered $PENDING pending job(s)"
fi

# Duplicate of the finished baseline (same config, non-deterministic): an
# exact cache hit, already terminal at the ack, exit 0.
"$RECONCTL" submit "${PORT_ARGS[@]}" --max-equits 3 --name dup --json \
  >"$TMP/dup.json"
DUP_EXIT=$?
if [ "$DUP_EXIT" -ne 0 ]; then
  fail "duplicate submit exited $DUP_EXIT, want 0"
elif [ "$(jget "$TMP/dup.json" "d['cache_hit']")" != "True" ]; then
  fail "duplicate submit was not served from the cache"
elif [ "$(jget "$TMP/dup.json" "d['image_hash']")" != "$DET_HASH" ]; then
  fail "cached duplicate returned different bits"
else
  echo "ok: duplicate served from cache with the original bits"
fi

# Det-lane bit-identity across incarnations: a fresh run of the baseline
# config in the new process must reproduce the pre-crash hash exactly.
"$RECONCTL" submit "${PORT_ARGS[@]}" --deterministic --max-equits 3 \
  --name detfresh --wait --json >"$TMP/detfresh.json" \
  || fail "det resubmit after restart"
if [ "$(jget "$TMP/detfresh.json" "d['image_hash']")" != "$DET_HASH" ]; then
  fail "det-lane re-run is not bit-identical across the restart"
else
  echo "ok: det-lane re-run bit-identical across the restart"
fi

"$RECONCTL" drain "${PORT_ARGS[@]}" --out "$TMP/report.json" \
  || fail "drain after recovery"
wait "$SERVER_PID"
SERVER_EXIT=$?
SERVER_PID=""
[ "$SERVER_EXIT" -eq 0 ] || fail "server exit $SERVER_EXIT after recovery"

REC="$(jget "$TMP/report.json" "d['jobs_recovered']")"
[ "$REC" = "$PENDING" ] ||
  fail "report counts $REC recovered job(s), log said $PENDING"
[ "$(jget "$TMP/report.json" "d['jobs_failed']")" = "0" ] ||
  fail "recovered load had failures"
[ "$(jget "$TMP/report.json" \
  "sum(1 for j in d['jobs'] if j['state'] != 'done')")" = "0" ] ||
  fail "not every job in the drain report is done"
[ "$(jget "$TMP/report.json" \
  "sum(1 for j in d['jobs'] if j.get('recoveries', 0) > 0)")" = "$REC" ] ||
  fail "per-job recovery counts disagree with the total"
# A recovered re-run of detagain (same det config) must match the baseline.
[ "$(jget "$TMP/report.json" \
  "all(j['image_hash'] == '$DET_HASH' for j in d['jobs']
      if j['name'] in ('detagain', 'detfresh'))")" = "True" ] ||
  fail "recovered det job produced different bits"
echo "ok: drained; $REC recovered, all jobs done exactly once"

# ---- incarnation 3: nothing left to recover -------------------------------
start_server "$TMP/server3.log"
if ! grep -q 'recovered 0 pending' "$TMP/server3.log"; then
  fail "third incarnation still had pending WAL entries (not exactly-once)"
  cat "$TMP/server3.log"
else
  echo "ok: third incarnation found an empty pending set"
fi
"$RECONCTL" drain "${PORT_ARGS[@]}" >/dev/null || fail "final drain"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES failure(s)"
  exit 1
fi
echo "all kill-and-restart recovery checks passed"
