// The shard test wall (DESIGN.md §13): slab-plan properties, the
// device-count determinism contract, halo-width edge cases, race-cleanliness
// of the halo exchange (plus exact attribution of a planted undeclared halo
// write), and cancellation between halo phases of a multi-device gang.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/error.h"
#include "obs/json.h"
#include "shard/plan.h"
#include "shard/shard_job.h"
#include "shard/sharded_icd.h"
#include "test_support.h"

namespace mbir::shard {
namespace {

using test::expectImagesBitIdentical;
using test::imageHash;
using test::tinyGolden;
using test::tinyGpuOptions;
using test::tinyProblem;

std::uint64_t sinoHash(const Sinogram& e) { return fnv1a64(e.flat()); }

// ---------------------------------------------------------------------------
// Slab plans
// ---------------------------------------------------------------------------

TEST(ShardPlan, EvenSplitPropertiesFuzzed) {
  // Every (size, slabs) combination must tile [0, size) exactly: start at
  // row 0, end at the last row, stay contiguous with no overlap, keep every
  // height positive, and spread the remainder one row at a time.
  for (int size : {1, 2, 3, 5, 7, 8, 16, 31, 32, 33, 48, 97, 128}) {
    for (int num_slabs = 1; num_slabs <= std::min(8, size); ++num_slabs) {
      const ShardPlan plan = makeShardPlan(size, num_slabs, 0);
      ASSERT_EQ(plan.numSlabs(), num_slabs);
      EXPECT_EQ(plan.image_size, size);
      EXPECT_EQ(plan.slabs.front().row0, 0);
      EXPECT_EQ(plan.slabs.back().row1, size);
      std::vector<bool> covered(std::size_t(size), false);
      int min_h = size, max_h = 0;
      for (int s = 0; s < num_slabs; ++s) {
        const SlabSpec& slab = plan.slabs[std::size_t(s)];
        ASSERT_GE(slab.height(), 1) << "size=" << size << " slabs=" << num_slabs;
        if (s > 0) EXPECT_EQ(slab.row0, plan.slabs[std::size_t(s - 1)].row1);
        for (int r = slab.row0; r < slab.row1; ++r) {
          ASSERT_FALSE(covered[std::size_t(r)]) << "row " << r << " overlaps";
          covered[std::size_t(r)] = true;
        }
        min_h = std::min(min_h, slab.height());
        max_h = std::max(max_h, slab.height());
      }
      for (int r = 0; r < size; ++r)
        ASSERT_TRUE(covered[std::size_t(r)]) << "row " << r << " uncovered";
      EXPECT_LE(max_h - min_h, 1) << "size=" << size << " slabs=" << num_slabs;
      EXPECT_NO_THROW(plan.validate());
    }
  }
}

TEST(ShardPlan, HaloEdgeWidths) {
  // 0 (freeze boundaries) and 1 are both legal, as is a halo equal to the
  // shortest slab; one past that reaches *through* a slab and is rejected.
  EXPECT_NO_THROW(makeShardPlan(32, 4, 0));
  EXPECT_NO_THROW(makeShardPlan(32, 4, 1));
  EXPECT_NO_THROW(makeShardPlan(32, 4, 8));   // halo == slab height
  EXPECT_THROW(makeShardPlan(32, 4, 9), Error);
  EXPECT_THROW(makeShardPlan(33, 4, 9), Error);  // shortest slab is 8
}

TEST(ShardPlan, RejectsMalformedPlans) {
  EXPECT_THROW(makeShardPlan(32, 0, 1), Error);
  EXPECT_THROW(makeShardPlan(32, 33, 1), Error);  // more slabs than rows
  EXPECT_THROW(makeShardPlan(0, 1, 0), Error);

  ShardPlan plan = makeShardPlan(32, 2, 1);
  plan.halo = -1;
  EXPECT_THROW(plan.validate(), Error);

  plan = makeShardPlan(32, 2, 1);
  plan.slabs[1].row0 = 17;  // gap
  EXPECT_THROW(plan.validate(), Error);

  plan = makeShardPlan(32, 2, 1);
  plan.slabs[1].row0 = 15;  // overlap
  EXPECT_THROW(plan.validate(), Error);

  plan = makeShardPlan(32, 2, 1);
  plan.slabs[1].row1 = 31;  // does not reach the last row
  EXPECT_THROW(plan.validate(), Error);
}

TEST(ShardPlan, ToJsonRoundTripsThroughParser) {
  const ShardPlan plan = makeShardPlan(32, 4, 2, /*seed=*/99);
  const obs::JsonValue doc = obs::parseJson(plan.toJson());
  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.find("image_size")->num_v, 32.0);
  EXPECT_EQ(doc.find("halo")->num_v, 2.0);
  EXPECT_EQ(doc.find("seed")->num_v, 99.0);
  EXPECT_EQ(doc.find("slabs")->array_v.size(), 4u);
}

// ---------------------------------------------------------------------------
// The sharded runner
// ---------------------------------------------------------------------------

struct ShardRun {
  Image2D x;
  Sinogram e;
  ShardRunStats stats;
};

ShardRun runSharded(const ShardPlan& plan, ShardedOptions opt,
                    const ShardIterationCallback& cb = {}) {
  const OwnedProblem& problem = tinyProblem();
  ShardRun out{problem.fbpInitialImage(), Sinogram(), {}};
  out.e = problem.initialError(out.x);
  ShardedGpuIcd runner(problem.view(), plan, std::move(opt));
  out.stats = runner.run(out.x, out.e, cb);
  return out;
}

ShardedOptions tinyShardOptions(int devices, int max_iterations = 4) {
  ShardedOptions opt;
  opt.engine = tinyGpuOptions();
  opt.engine.max_iterations = max_iterations;
  opt.devices = devices;
  return opt;
}

TEST(ShardedGpuIcd, BitIdenticalAcrossDeviceCounts) {
  // The determinism contract: one plan -> one image, for ANY device count.
  // Devices only remap slabs onto simulated devices, which must change the
  // modeled clock and nothing else.
  const ShardPlan plan = makeShardPlan(tinyProblem().geometry().image_size,
                                       /*num_slabs=*/4, /*halo=*/1);
  const ShardRun d1 = runSharded(plan, tinyShardOptions(1));
  const ShardRun d2 = runSharded(plan, tinyShardOptions(2));
  const ShardRun d4 = runSharded(plan, tinyShardOptions(4));

  expectImagesBitIdentical(d1.x, d2.x);
  expectImagesBitIdentical(d1.x, d4.x);
  EXPECT_EQ(sinoHash(d1.e), sinoHash(d2.e));
  EXPECT_EQ(sinoHash(d1.e), sinoHash(d4.e));
  EXPECT_EQ(d1.stats.iterations, d4.stats.iterations);
  EXPECT_EQ(d1.stats.equits, d4.stats.equits);
  EXPECT_EQ(d1.stats.work.voxel_updates, d4.stats.work.voxel_updates);

  // The time model must respond to the device count: compute spreads out
  // (less critical-path compute), communication appears (none at D=1).
  EXPECT_EQ(d1.stats.comm_seconds, 0.0);
  EXPECT_GT(d2.stats.comm_seconds, 0.0);
  EXPECT_GT(d4.stats.comm_seconds, 0.0);
  EXPECT_LT(d4.stats.compute_seconds, d1.stats.compute_seconds);
  EXPECT_LT(d4.stats.modeled_seconds, d1.stats.modeled_seconds);
}

TEST(ShardedGpuIcd, SingleSlabPlanMatchesUnshardedEngine) {
  // An S=1 plan is the degenerate case: no halo, exchange reduces to a
  // copy. It must be bit-identical to the plain GpuIcd — stats included —
  // so sharding sits on top of the engine without perturbing it.
  const OwnedProblem& problem = tinyProblem();
  const ShardPlan plan = makeShardPlan(problem.geometry().image_size, 1, 1);
  const ShardRun sharded = runSharded(plan, tinyShardOptions(1));

  Image2D x = problem.fbpInitialImage();
  Sinogram e = problem.initialError(x);
  GpuIcdOptions opt = tinyGpuOptions();
  opt.max_iterations = 4;
  GpuIcd engine(problem.view(), opt);
  const GpuRunStats stats = engine.run(x, e);

  expectImagesBitIdentical(sharded.x, x);
  EXPECT_EQ(sinoHash(sharded.e), sinoHash(e));
  EXPECT_EQ(sharded.stats.iterations, stats.iterations);
  EXPECT_EQ(sharded.stats.equits, stats.equits);
  EXPECT_EQ(sharded.stats.work.voxel_updates, stats.work.voxel_updates);
}

TEST(ShardedGpuIcd, ValidatesDevicesAndImageSize) {
  const OwnedProblem& problem = tinyProblem();
  const int n = problem.geometry().image_size;
  EXPECT_THROW(ShardedGpuIcd(problem.view(), makeShardPlan(n, 4, 1),
                             tinyShardOptions(0)),
               Error);
  EXPECT_THROW(ShardedGpuIcd(problem.view(), makeShardPlan(n, 4, 1),
                             tinyShardOptions(5)),  // more devices than slabs
               Error);
  EXPECT_THROW(ShardedGpuIcd(problem.view(), makeShardPlan(n / 2, 2, 1),
                             tinyShardOptions(1)),  // plan for the wrong image
               Error);
}

TEST(ShardedGpuIcd, HaloExchangeIsRaceClean) {
  // Race checking on: the three exchange kernels (pack / reduce / unpack)
  // declare every access, and their per-launch block access ranges are
  // disjoint — the detector must check them and find nothing, on the
  // exchange simulator AND on every slab engine's simulator.
  const ShardPlan plan = makeShardPlan(tinyProblem().geometry().image_size,
                                       /*num_slabs=*/4, /*halo=*/1);
  ShardedOptions opt = tinyShardOptions(2, /*max_iterations=*/3);
  opt.engine.race_check = {.enabled = true, .throw_on_race = true};

  const OwnedProblem& problem = tinyProblem();
  Image2D x = problem.fbpInitialImage();
  Sinogram e = problem.initialError(x);
  ShardedGpuIcd runner(problem.view(), plan, opt);
  const ShardRunStats stats = runner.run(x, e);  // throw_on_race: any race dies

  EXPECT_TRUE(runner.exchangeSimulator().raceDetector().races().empty());
  const gsim::RaceCheckTotals ex = runner.exchangeSimulator().raceDetector().totals();
  EXPECT_GE(ex.launches_checked, std::uint64_t(3 * stats.exchanges));
  EXPECT_EQ(ex.races_found, 0u);
  for (int s = 0; s < plan.numSlabs(); ++s)
    EXPECT_TRUE(runner.slabSimulator(s).raceDetector().races().empty())
        << "slab " << s;
  EXPECT_TRUE(stats.race_check_enabled);
  EXPECT_GT(stats.race_launches_checked, 0u);
  EXPECT_GT(stats.race_ranges_checked, 0u);
  EXPECT_EQ(stats.race_reports, 0u);
  EXPECT_EQ(stats.exchanges, 3);
}

TEST(ShardedGpuIcd, PlantedUndeclaredHaloWriteIsAttributedExactly) {
  // Sabotage: the halo-pack kernel's first block declares a write reaching
  // one halo past its slab boundary — modeling a kernel that touches an
  // unowned halo row without a declared exchange. The detector must name
  // the kernel, the buffer, both blocks, the write-write kind pair, and
  // the exact overlapping element range.
  const int n = tinyProblem().geometry().image_size;
  const ShardPlan plan = makeShardPlan(n, /*num_slabs=*/2, /*halo=*/1);
  ShardedOptions opt = tinyShardOptions(2, /*max_iterations=*/1);
  opt.engine.race_check = {.enabled = true, .throw_on_race = false};
  opt.plant_undeclared_halo_write = true;

  const OwnedProblem& problem = tinyProblem();
  Image2D x = problem.fbpInitialImage();
  Sinogram e = problem.initialError(x);
  ShardedGpuIcd runner(problem.view(), plan, opt);
  const ShardRunStats stats = runner.run(x, e);

  const auto& races = runner.exchangeSimulator().raceDetector().races();
  ASSERT_FALSE(races.empty());
  const gsim::RaceReport& r = races.front();
  EXPECT_EQ(r.kernel, "shard.halo_pack");
  EXPECT_EQ(r.buffer, "shard.image");
  EXPECT_EQ(std::min(r.block_a, r.block_b), 0);
  EXPECT_EQ(std::max(r.block_a, r.block_b), 1);
  EXPECT_EQ(r.kind_a, gsim::AccessKind::kWrite);
  EXPECT_EQ(r.kind_b, gsim::AccessKind::kWrite);
  // The trespass is exactly the first halo row of slab 1.
  EXPECT_EQ(r.lo, std::int64_t(plan.slabs[0].row1) * n);
  EXPECT_EQ(r.hi, std::int64_t(plan.slabs[0].row1 + 1) * n);
  EXPECT_GE(stats.race_reports, 1u);
}

TEST(ShardedGpuIcd, CancelBetweenExchangesKeepsConsistentSnapshot) {
  // A 2-device gang cancelled between halo phases must terminate (the
  // ThreadPool error path breaks the peer out of the barrier rendezvous)
  // and return the last *completed* BSP snapshot — bit-identical to a run
  // stopped cleanly at that exchange — never a torn mix of iterations.
  const ShardPlan plan = makeShardPlan(tinyProblem().geometry().image_size,
                                       /*num_slabs=*/4, /*halo=*/1);

  const ShardRun clean = runSharded(
      plan, tinyShardOptions(2, /*max_iterations=*/6),
      [](const ShardIterationInfo& info) { return info.iteration < 2; });
  ASSERT_EQ(clean.stats.iterations, 2);
  ASSERT_TRUE(clean.stats.stopped_by_callback);

  std::atomic<bool> cancel{false};
  ShardedOptions opt = tinyShardOptions(2, /*max_iterations=*/6);
  opt.cancel = &cancel;
  const ShardRun cancelled = runSharded(
      plan, std::move(opt), [&cancel](const ShardIterationInfo& info) {
        if (info.iteration == 2) cancel.store(true);
        return true;
      });

  EXPECT_TRUE(cancelled.stats.cancelled);
  EXPECT_FALSE(cancelled.stats.stopped_by_callback);
  EXPECT_EQ(cancelled.stats.iterations, 2);
  expectImagesBitIdentical(cancelled.x, clean.x);
  EXPECT_EQ(sinoHash(cancelled.e), sinoHash(clean.e));
}

// ---------------------------------------------------------------------------
// The job wrapper + report
// ---------------------------------------------------------------------------

TEST(ShardJob, ReconstructShardedReportsShardReportSchema) {
  const OwnedProblem& problem = tinyProblem();
  ShardConfig cfg;
  cfg.plan = makeShardPlan(problem.geometry().image_size, 2, 1);
  cfg.devices = 2;
  cfg.base = test::tinyRunConfig(Algorithm::kGpuIcd, /*max_equits=*/10.0);
  const ShardRunResult r = reconstructSharded(problem, tinyGolden(), cfg);

  EXPECT_GT(r.run.equits, 0.0);
  EXPECT_GT(r.shard.exchanges, 0);
  EXPECT_GT(r.shard.comm_bytes, 0u);
  EXPECT_EQ(r.devices, 2);

  const obs::JsonValue doc = obs::parseJson(shardReportJson(r));
  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.find("schema")->str_v, "gpumbir.shard_report/1");
  EXPECT_EQ(doc.find("devices")->num_v, 2.0);
  ASSERT_NE(doc.find("plan"), nullptr);
  EXPECT_EQ(doc.find("plan")->find("image_size")->num_v,
            double(problem.geometry().image_size));
  EXPECT_NE(doc.find("comm_seconds"), nullptr);
  EXPECT_NE(doc.find("comm_overhead"), nullptr);
  EXPECT_NE(doc.find("exchanges"), nullptr);
}

TEST(ShardJob, ShardedRunMatchesPlanAcrossDeviceCountsEndToEnd) {
  // End-to-end determinism through the job wrapper (the path the service
  // dispatches): same plan, different device counts, same image bits and
  // convergence curve.
  const OwnedProblem& problem = tinyProblem();
  ShardConfig cfg;
  cfg.plan = makeShardPlan(problem.geometry().image_size, 4, 1);
  cfg.base = test::tinyRunConfig(Algorithm::kGpuIcd, /*max_equits=*/6.0);

  cfg.devices = 1;
  const ShardRunResult d1 = reconstructSharded(problem, tinyGolden(), cfg);
  cfg.devices = 4;
  const ShardRunResult d4 = reconstructSharded(problem, tinyGolden(), cfg);

  expectImagesBitIdentical(d1.run.image, d4.run.image);
  EXPECT_EQ(d1.run.final_rmse_hu, d4.run.final_rmse_hu);
  EXPECT_EQ(d1.run.equits, d4.run.equits);
  ASSERT_EQ(d1.run.curve.size(), d4.run.curve.size());
  for (std::size_t i = 0; i < d1.run.curve.size(); ++i)
    EXPECT_EQ(d1.run.curve[i].rmse_hu, d4.run.curve[i].rmse_hu);
  EXPECT_NE(d1.run.modeled_seconds, d4.run.modeled_seconds);
}

}  // namespace
}  // namespace mbir::shard
