// Golden regression fixtures: every engine's reconstruction of the tiny
// suite case is pinned to a committed fingerprint (FNV-1a-64 of the image's
// float bit patterns) plus its RMSE / equits / modeled seconds. Any change
// to numerics — intended or not — trips this test; intended changes
// regenerate the fixture:
//
//   GPUMBIR_REGEN_GOLDEN=1 ./test_golden_regression
//
// The fixture (tests/fixtures/golden_regression.json) is reviewed like
// code: a diff there is a statement that the numbers moved on purpose.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos/fault.h"
#include "obs/json.h"
#include "sched/scheduler.h"
#include "shard/shard_job.h"
#include "svc/dispatcher.h"
#include "test_support.h"

namespace mbir {
namespace {

constexpr const char* kFixturePath =
    GPUMBIR_FIXTURE_DIR "/golden_regression.json";

struct EngineRecord {
  std::string key;
  std::uint64_t image_hash = 0;
  double rmse_hu = 0.0;
  double equits = 0.0;
  double modeled_seconds = 0.0;
};

std::string hashHex(std::uint64_t h) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(h));
  return buf;
}

// Fixed-budget runs (no RMSE stop) so the pinned numbers do not depend on
// the convergence threshold; PSV runs single-threaded, the only
// deterministic PSV mode.
std::vector<EngineRecord> computeCurrent() {
  std::vector<EngineRecord> records;
  const auto run = [&](const std::string& key, RunConfig cfg) {
    cfg.stop_rmse_hu = -1.0;
    const RunResult r =
        reconstruct(test::tinyProblem(), test::tinyGolden(), cfg);
    records.push_back({key, test::imageHash(r.image), r.final_rmse_hu,
                       r.equits, r.modeled_seconds});
  };
  run("seq", test::tinyRunConfig(Algorithm::kSequentialIcd, 4.0));
  RunConfig psv = test::tinyRunConfig(Algorithm::kPsvIcd, 4.0);
  psv.psv.num_threads = 1;
  run("psv_1t", psv);
  run("gpu", test::tinyRunConfig(Algorithm::kGpuIcd, 4.0));
  RunConfig gpu_exact = test::tinyRunConfig(Algorithm::kGpuIcd, 4.0);
  gpu_exact.gpu.flags.quantize_amatrix = false;
  run("gpu_exact_amatrix", gpu_exact);
  return records;
}

void writeFixture(const std::vector<EngineRecord>& records) {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", "gpumbir.golden_regression/1");
  w.key("engines").beginObject();
  for (const EngineRecord& r : records) {
    w.key(r.key).beginObject();
    w.kv("image_hash", hashHex(r.image_hash));
    w.kv("rmse_hu", r.rmse_hu);
    w.kv("equits", r.equits);
    w.kv("modeled_seconds", r.modeled_seconds);
    w.endObject();
  }
  w.endObject();
  w.endObject();
  std::ofstream out(kFixturePath, std::ios::binary);
  ASSERT_TRUE(out.good()) << "cannot write " << kFixturePath;
  out << w.str() << '\n';
}

TEST(GoldenRegression, EnginesMatchCommittedFixtures) {
  const std::vector<EngineRecord> current = computeCurrent();

  if (std::getenv("GPUMBIR_REGEN_GOLDEN")) {
    writeFixture(current);
    GTEST_SKIP() << "regenerated " << kFixturePath;
  }

  std::ifstream in(kFixturePath, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing fixture " << kFixturePath
      << " — regenerate with GPUMBIR_REGEN_GOLDEN=1 ./test_golden_regression";
  std::stringstream ss;
  ss << in.rdbuf();
  const obs::JsonValue doc = obs::parseJson(ss.str());
  ASSERT_EQ(doc.find("schema")->asString(), "gpumbir.golden_regression/1");
  const obs::JsonValue* engines = doc.find("engines");
  ASSERT_TRUE(engines && engines->isObject());
  ASSERT_EQ(engines->object_v.size(), current.size())
      << "fixture engine set diverged — regenerate";

  for (const EngineRecord& r : current) {
    SCOPED_TRACE(r.key);
    const obs::JsonValue* e = engines->find(r.key);
    ASSERT_NE(e, nullptr) << "engine missing from fixture";
    // The image fingerprint is the real regression tripwire: bit-exact.
    EXPECT_EQ(e->find("image_hash")->asString(), hashHex(r.image_hash))
        << "image bits changed; if intended, regenerate the fixture with\n"
        << "  GPUMBIR_REGEN_GOLDEN=1 ./test_golden_regression";
    // Scalars are written with full round-trip precision, so equality is
    // exact as well; failures here with a matching hash mean the stats
    // pipeline (not the image) drifted.
    EXPECT_EQ(e->find("rmse_hu")->asNumber(), r.rmse_hu);
    EXPECT_EQ(e->find("equits")->asNumber(), r.equits);
    EXPECT_EQ(e->find("modeled_seconds")->asNumber(), r.modeled_seconds);
  }
}

// ---------------------------------------------------------------------------
// Chaos-lane fixture: a faulted batch run is itself pinned
// ---------------------------------------------------------------------------

constexpr const char* kChaosFixturePath =
    GPUMBIR_FIXTURE_DIR "/chaos_faulted_run.json";

struct FaultedJobRecord {
  int job_id = 0;
  bool faulted = false;          // launch-faulted by the plan's schedule
  std::uint64_t image_hash = 0;  // 0 for faulted jobs (no image)
};

/// One seeded batch through the offline scheduler with launch faults armed:
/// which jobs fault is part of the contract (the schedule is a pure
/// function of seed and job id), and every surviving job's image is pinned.
std::vector<FaultedJobRecord> computeFaultedRun() {
  chaos::FaultPlan plan;
  plan.seed = 0xC4A05;
  plan.launch_fault_rate = 0.35;
  const chaos::FaultInjector injector(plan);

  sched::SchedulerOptions opt;
  opt.num_devices = 2;
  opt.injector = &injector;
  sched::BatchScheduler scheduler(opt);
  const int kJobs = 12;
  RunConfig cfg = test::tinyRunConfig(Algorithm::kGpuIcd, 4.0);
  cfg.stop_rmse_hu = -1.0;
  for (int i = 0; i < kJobs; ++i)
    scheduler.submit(test::tinyProblem(), test::tinyGolden(), cfg,
                     "faulted" + std::to_string(i));
  scheduler.runAll();

  std::vector<FaultedJobRecord> records;
  for (int id = 0; id < kJobs; ++id) {
    const sched::JobResult& r = scheduler.result(id);
    records.push_back({id, r.failed,
                       r.failed ? 0u : test::imageHash(r.run.image)});
  }
  return records;
}

void writeChaosFixture(const std::vector<FaultedJobRecord>& records) {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", "gpumbir.chaos_faulted_run/1");
  w.key("jobs").beginArray();
  for (const FaultedJobRecord& r : records) {
    w.beginObject();
    w.kv("job_id", r.job_id);
    w.kv("faulted", r.faulted);
    if (!r.faulted) w.kv("image_hash", hashHex(r.image_hash));
    w.endObject();
  }
  w.endArray();
  w.endObject();
  std::ofstream out(kChaosFixturePath, std::ios::binary);
  ASSERT_TRUE(out.good()) << "cannot write " << kChaosFixturePath;
  out << w.str() << '\n';
}

TEST(GoldenRegression, FaultedRunMatchesCommittedFixture) {
  const std::vector<FaultedJobRecord> current = computeFaultedRun();

  // Unaffected jobs are bit-identical to a fault-free reconstruction —
  // checked in-process, independent of the fixture.
  RunConfig cfg = test::tinyRunConfig(Algorithm::kGpuIcd, 4.0);
  cfg.stop_rmse_hu = -1.0;
  const std::uint64_t clean_hash = test::imageHash(
      reconstruct(test::tinyProblem(), test::tinyGolden(), cfg).image);
  int faulted = 0;
  for (const FaultedJobRecord& r : current) {
    if (r.faulted) {
      ++faulted;
    } else {
      EXPECT_EQ(clean_hash, r.image_hash) << "job " << r.job_id;
    }
  }
  EXPECT_GT(faulted, 0);                  // the plan really fired
  EXPECT_LT(faulted, int(current.size()));  // and spared survivors

  if (std::getenv("GPUMBIR_REGEN_GOLDEN")) {
    writeChaosFixture(current);
    GTEST_SKIP() << "regenerated " << kChaosFixturePath;
  }

  std::ifstream in(kChaosFixturePath, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing fixture " << kChaosFixturePath
      << " — regenerate with GPUMBIR_REGEN_GOLDEN=1 ./test_golden_regression";
  std::stringstream ss;
  ss << in.rdbuf();
  const obs::JsonValue doc = obs::parseJson(ss.str());
  ASSERT_EQ(doc.find("schema")->asString(), "gpumbir.chaos_faulted_run/1");
  const obs::JsonValue* jobs = doc.find("jobs");
  ASSERT_TRUE(jobs && jobs->isArray());
  ASSERT_EQ(jobs->array_v.size(), current.size())
      << "fixture job set diverged — regenerate";

  for (std::size_t i = 0; i < current.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    const obs::JsonValue& j = jobs->array_v[i];
    EXPECT_EQ(int(j.find("job_id")->asNumber()), current[i].job_id);
    // A flip here means the fault schedule itself moved for this seed —
    // that breaks replay-by-seed and must be deliberate.
    ASSERT_EQ(j.find("faulted")->bool_v, current[i].faulted);
    if (!current[i].faulted)
      EXPECT_EQ(j.find("image_hash")->asString(),
                hashHex(current[i].image_hash))
          << "image bits changed; if intended, regenerate the fixture with\n"
          << "  GPUMBIR_REGEN_GOLDEN=1 ./test_golden_regression";
  }
}

// ---------------------------------------------------------------------------
// Sharded-run fixtures: the multi-device determinism contract is pinned
// ---------------------------------------------------------------------------

struct ShardRecord {
  int devices = 0;
  std::uint64_t image_hash = 0;
  double rmse_hu = 0.0;
  double equits = 0.0;
  double modeled_seconds = 0.0;
  int exchanges = 0;
};

std::string shardFixturePath(int devices) {
  return std::string(GPUMBIR_FIXTURE_DIR "/shard_d") + std::to_string(devices) +
         ".json";
}

/// Fixed-budget sharded run of the tiny case on a 4-slab halo-1 plan.
ShardRecord computeShardRecord(int devices) {
  shard::ShardConfig cfg;
  cfg.plan = shard::makeShardPlan(
      test::tinyProblem().geometry().image_size, /*num_slabs=*/4, /*halo=*/1);
  cfg.devices = devices;
  cfg.base = test::tinyRunConfig(Algorithm::kGpuIcd, 4.0);
  cfg.base.stop_rmse_hu = -1.0;
  const shard::ShardRunResult r =
      reconstructSharded(test::tinyProblem(), test::tinyGolden(), cfg);
  return {devices, test::imageHash(r.run.image), r.run.final_rmse_hu,
          r.run.equits, r.run.modeled_seconds, r.shard.exchanges};
}

void writeShardFixture(const ShardRecord& r) {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", "gpumbir.shard_regression/1");
  w.kv("devices", r.devices);
  w.kv("slabs", 4);
  w.kv("halo", 1);
  w.kv("image_hash", hashHex(r.image_hash));
  w.kv("rmse_hu", r.rmse_hu);
  w.kv("equits", r.equits);
  w.kv("modeled_seconds", r.modeled_seconds);
  w.kv("exchanges", r.exchanges);
  w.endObject();
  std::ofstream out(shardFixturePath(r.devices), std::ios::binary);
  ASSERT_TRUE(out.good()) << "cannot write " << shardFixturePath(r.devices);
  out << w.str() << '\n';
}

TEST(GoldenRegression, ShardedRunsMatchCommittedFixtures) {
  const ShardRecord d2 = computeShardRecord(2);
  const ShardRecord d4 = computeShardRecord(4);

  // The contract itself, independent of the fixtures: the image is a pure
  // function of the plan — device count moves only the modeled clock.
  EXPECT_EQ(d2.image_hash, d4.image_hash);
  EXPECT_EQ(d2.rmse_hu, d4.rmse_hu);
  EXPECT_EQ(d2.equits, d4.equits);
  EXPECT_EQ(d2.exchanges, d4.exchanges);
  EXPECT_NE(d2.modeled_seconds, d4.modeled_seconds);

  if (std::getenv("GPUMBIR_REGEN_GOLDEN")) {
    writeShardFixture(d2);
    writeShardFixture(d4);
    GTEST_SKIP() << "regenerated " << shardFixturePath(2) << " and "
                 << shardFixturePath(4);
  }

  for (const ShardRecord& r : {d2, d4}) {
    SCOPED_TRACE("devices=" + std::to_string(r.devices));
    std::ifstream in(shardFixturePath(r.devices), std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing fixture " << shardFixturePath(r.devices)
        << " — regenerate with GPUMBIR_REGEN_GOLDEN=1 ./test_golden_regression";
    std::stringstream ss;
    ss << in.rdbuf();
    const obs::JsonValue doc = obs::parseJson(ss.str());
    ASSERT_EQ(doc.find("schema")->asString(), "gpumbir.shard_regression/1");
    EXPECT_EQ(int(doc.find("devices")->asNumber()), r.devices);
    EXPECT_EQ(doc.find("image_hash")->asString(), hashHex(r.image_hash))
        << "sharded image bits changed; if intended, regenerate with\n"
        << "  GPUMBIR_REGEN_GOLDEN=1 ./test_golden_regression";
    EXPECT_EQ(doc.find("rmse_hu")->asNumber(), r.rmse_hu);
    EXPECT_EQ(doc.find("equits")->asNumber(), r.equits);
    EXPECT_EQ(doc.find("modeled_seconds")->asNumber(), r.modeled_seconds);
    EXPECT_EQ(int(doc.find("exchanges")->asNumber()), r.exchanges);
  }
}

// ---------------------------------------------------------------------------
// The sharded chaos soak: gangs under fire never emit a torn image
// ---------------------------------------------------------------------------

TEST(ShardSoak, ShardedGangsSurviveChaosWithoutTornImages) {
  // Seeded mixed traffic — single jobs plus 2- and 4-shard gangs — through
  // the live dispatcher with stalls/deaths armed on devices {1,3} and two
  // forced mid-run stalls planted on gangs. A device lost mid-halo-exchange
  // must fail or migrate the WHOLE logical job: every job that completes
  // carries the exact fault-free image bits for its plan, cancelled or
  // migrated alike; a torn mix of iterations cannot hash-match.
  const std::uint64_t seed = 0x5A4DD;
  RunConfig cfg = test::tinyRunConfig(Algorithm::kGpuIcd, 4.0);
  cfg.stop_rmse_hu = -1.0;

  // Reference bits per shard count (devices never affect bits, so one
  // single-device reference run per plan suffices).
  const std::uint64_t ref1 = test::imageHash(
      reconstruct(test::tinyProblem(), test::tinyGolden(), cfg).image);
  const auto shard_ref = [&cfg](int shards) {
    shard::ShardConfig sc;
    sc.plan = shard::makeShardPlan(test::tinyProblem().geometry().image_size,
                                   shards, /*halo=*/1, cfg.gpu.seed);
    sc.devices = 1;
    sc.base = cfg;
    return test::imageHash(
        reconstructSharded(test::tinyProblem(), test::tinyGolden(), sc)
            .run.image);
  };
  const std::uint64_t ref2 = shard_ref(2);
  const std::uint64_t ref4 = shard_ref(4);

  chaos::FaultPlan plan;
  plan.seed = seed;
  plan.launch_fault_rate = 0.08;
  plan.stall_rate = 0.08;
  plan.death_rate = 0.04;
  plan.target_devices = {1, 3};  // two guaranteed survivors

  svc::DispatcherOptions opt;
  opt.num_devices = 4;
  opt.queue_capacity = 32;
  opt.fault_plan = plan;
  opt.watchdog_ms = 250.0;
  svc::Dispatcher dispatcher(opt);

  const int kJobs = 18;
  std::vector<int> accepted;
  std::vector<int> shards_of;
  for (int i = 0; i < kJobs; ++i) {
    svc::JobSpec spec;
    spec.problem = &test::tinyProblem();
    spec.golden = &test::tinyGolden();
    spec.config = cfg;
    spec.name = "shardsoak" + std::to_string(i);
    spec.shards = (i % 3 == 0) ? 4 : (i % 3 == 1) ? 2 : 1;
    spec.priority = i % 3;
    // Two gangs are stalled mid-run by force: the watchdog must abandon the
    // gang leader's device and requeue the whole logical job.
    if (i == 3 || i == 4)
      spec.fault = chaos::parseFaultSpec("stall@10");
    const svc::SubmitOutcome out = dispatcher.submit(spec);
    ASSERT_TRUE(out.accepted) << out.reason;
    accepted.push_back(out.job_id);
    shards_of.push_back(spec.shards);
  }

  std::uint64_t done = 0, failed = 0, migrated = 0, sharded_done = 0;
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    const svc::JobStatus s = dispatcher.waitTerminal(accepted[i]);
    ASSERT_TRUE(svc::isTerminal(s.state)) << accepted[i];
    migrated += std::uint64_t(s.migrations);
    if (s.state == svc::JobState::kDone) {
      ++done;
      ASSERT_TRUE(s.has_image) << accepted[i];
      const std::uint64_t want =
          shards_of[i] == 4 ? ref4 : shards_of[i] == 2 ? ref2 : ref1;
      EXPECT_EQ(want, s.image_hash)
          << "job " << accepted[i] << " (shards=" << shards_of[i]
          << ", migrations=" << s.migrations << ") returned torn/wrong bits";
      if (shards_of[i] > 1) ++sharded_done;
    } else {
      ASSERT_EQ(s.state, svc::JobState::kFailed) << accepted[i];
      ++failed;
    }
  }
  EXPECT_EQ(done + failed, accepted.size());
  EXPECT_GT(sharded_done, 0u);  // gangs really completed under chaos

  // The forced gang stalls resolved by migrating the whole logical job.
  for (int id : {accepted[3], accepted[4]}) {
    const svc::JobStatus s = dispatcher.status(id);
    if (s.state == svc::JobState::kDone) EXPECT_GE(s.migrations, 1) << id;
  }

  const svc::SvcReport& rep = dispatcher.drain();
  EXPECT_EQ(rep.jobs_submitted, accepted.size());
  EXPECT_EQ(rep.jobs_done, done);
  EXPECT_EQ(rep.jobs_failed, failed);
  EXPECT_EQ(rep.jobs_migrated, migrated);
  EXPECT_GE(rep.jobs_migrated, 1u);  // the planted stalls really migrated
  // Plan-driven stalls/deaths respect target_devices {1,3}, but the two
  // FORCED gang stalls fire on whichever device led that gang — any device
  // can legitimately appear among the failed.
  EXPECT_GE(rep.devices_failed, 1u);
}

TEST(GoldenRegression, FingerprintIsRunToRunStable) {
  // Two fresh computations in one process must agree bit-for-bit — guards
  // the fixture protocol itself against hidden run-to-run nondeterminism.
  const auto a = computeCurrent();
  const auto b = computeCurrent();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].image_hash, b[i].image_hash) << a[i].key;
    EXPECT_EQ(a[i].modeled_seconds, b[i].modeled_seconds) << a[i].key;
  }
}

}  // namespace
}  // namespace mbir
