// Chaos lane tests (DESIGN.md §12): the seed-driven fault injector, the
// dispatcher's device watchdog + job migration, the offline batch
// scheduler's launch-fault handling, the wire `chaos` verb, and the seeded
// reliability soak gate.
//
// The soak gate (ChaosSoak.SeededSoakGate) pushes a few hundred mixed jobs
// through a dispatcher with stall/death/launch faults armed and asserts the
// service-level invariants: no hangs, no lost jobs (every accepted job
// reaches exactly one terminal state), clean drain, and bit-identity of
// unaffected deterministic jobs to a fault-free run. Its seed and job count
// come from GPUMBIR_SOAK_SEED / GPUMBIR_SOAK_JOBS, and it prints the exact
// replay command to stderr, so any CI failure reproduces locally:
//
//   GPUMBIR_SOAK_SEED=<seed> GPUMBIR_SOAK_JOBS=<n> ./test_chaos \
//       --gtest_filter='ChaosSoak.*'
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "chaos/fault.h"
#include "core/error.h"
#include "core/rng.h"
#include "obs/json.h"
#include "sched/scheduler.h"
#include "svc/client.h"
#include "svc/dispatcher.h"
#include "svc/server.h"
#include "test_support.h"

namespace mbir::test {
namespace {

using chaos::FaultKind;
using chaos::FaultPlan;
using chaos::JobFault;

/// Fixed-work job config every chaos test uses: budget-bound, no RMSE stop,
/// so results are reproducible and independent of the device that runs them.
RunConfig chaosJobConfig() {
  RunConfig cfg = tinyRunConfig(Algorithm::kGpuIcd, /*max_equits=*/3.0);
  cfg.stop_rmse_hu = 0.0;
  return cfg;
}

/// Image fingerprint of a fault-free run of chaosJobConfig() — the
/// bit-identity reference every migrated/unaffected job must match.
std::uint64_t faultFreeHash() {
  static const std::uint64_t hash = imageHash(
      reconstruct(tinyProblem(), tinyGolden(), chaosJobConfig()).image);
  return hash;
}

svc::JobSpec chaosJob(const std::string& name, bool deterministic = true) {
  svc::JobSpec spec;
  spec.problem = &tinyProblem();
  spec.golden = &tinyGolden();
  spec.config = chaosJobConfig();
  spec.name = name;
  spec.deterministic = deterministic;
  return spec;
}

// ---------------------------------------------------------------------------
// Fault specs
// ---------------------------------------------------------------------------

TEST(ChaosSpec, ParseRoundTripsEveryKind) {
  EXPECT_EQ(FaultKind::kNone, chaos::parseFaultSpec("").kind);
  const JobFault launch = chaos::parseFaultSpec("launch@3");
  EXPECT_EQ(FaultKind::kLaunchFault, launch.kind);
  EXPECT_EQ(3u, launch.at_event);
  const JobFault stall = chaos::parseFaultSpec("stall@0");
  EXPECT_EQ(FaultKind::kStall, stall.kind);
  EXPECT_EQ(0u, stall.at_event);
  EXPECT_EQ(FaultKind::kDeath, chaos::parseFaultSpec("death").kind);
  // An omitted index defaults to event 0.
  EXPECT_EQ(0u, chaos::parseFaultSpec("launch").at_event);

  for (const char* spec : {"", "launch@3", "launch@0", "stall@7", "death"})
    EXPECT_EQ(spec, chaos::faultSpecString(chaos::parseFaultSpec(spec)));
}

TEST(ChaosSpec, ParseRejectsGarbage) {
  for (const char* bad : {"boom", "launch@", "launch@x", "launch@-1",
                          "stall@1.5", "death@2", "@3", "LAUNCH@1"})
    EXPECT_THROW(chaos::parseFaultSpec(bad), Error) << bad;
}

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

TEST(ChaosPlan, ValidateBoundsTheRates) {
  FaultPlan p;
  EXPECT_NO_THROW(p.validate());
  EXPECT_FALSE(p.enabled());
  p.launch_fault_rate = 0.2;
  EXPECT_TRUE(p.enabled());
  EXPECT_NO_THROW(p.validate());

  FaultPlan bad = p;
  bad.stall_rate = -0.1;
  EXPECT_THROW(bad.validate(), Error);
  bad = p;
  bad.death_rate = 1.5;
  EXPECT_THROW(bad.validate(), Error);
  bad = p;
  bad.launch_fault_rate = 0.6;
  bad.stall_rate = 0.6;  // sum > 1: the three draws share one uniform
  EXPECT_THROW(bad.validate(), Error);
}

TEST(ChaosPlan, TargetsAllDevicesUnlessRestricted) {
  FaultPlan p;
  EXPECT_TRUE(p.targetsDevice(0));
  EXPECT_TRUE(p.targetsDevice(7));
  p.target_devices = {1, 3};
  EXPECT_FALSE(p.targetsDevice(0));
  EXPECT_TRUE(p.targetsDevice(1));
  EXPECT_FALSE(p.targetsDevice(2));
  EXPECT_TRUE(p.targetsDevice(3));
}

TEST(ChaosPlan, JsonRoundTrips) {
  FaultPlan p;
  p.seed = 0xFEEDFACEu;
  p.launch_fault_rate = 0.25;
  p.stall_rate = 0.125;
  p.death_rate = 0.0625;
  p.target_devices = {0, 2, 5};
  const FaultPlan back = FaultPlan::fromJson(obs::parseJson(p.toJson()));
  EXPECT_EQ(p.seed, back.seed);
  EXPECT_EQ(p.launch_fault_rate, back.launch_fault_rate);
  EXPECT_EQ(p.stall_rate, back.stall_rate);
  EXPECT_EQ(p.death_rate, back.death_rate);
  EXPECT_EQ(p.target_devices, back.target_devices);
}

// ---------------------------------------------------------------------------
// The injector: a pure function of (seed, job id)
// ---------------------------------------------------------------------------

FaultPlan soakishPlan(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  p.launch_fault_rate = 0.3;
  p.stall_rate = 0.2;
  p.death_rate = 0.1;
  return p;
}

TEST(ChaosInjector, ScheduleDependsOnlyOnSeedAndJobId) {
  const chaos::FaultInjector a(soakishPlan(42));
  const chaos::FaultInjector b(soakishPlan(42));
  int faulted = 0;
  std::set<int> kinds_seen;
  for (int id = 0; id < 500; ++id) {
    const JobFault fa = a.jobFault(id);
    const JobFault fb = b.jobFault(id);
    EXPECT_EQ(int(fa.kind), int(fb.kind)) << id;
    EXPECT_EQ(fa.at_event, fb.at_event) << id;
    kinds_seen.insert(int(fa.kind));
    if (!fa.none()) {
      ++faulted;
      EXPECT_LT(fa.at_event, 4u) << id;  // fires within tiny-job reach
    }
  }
  // All three fault kinds (and the no-fault case) occur at these rates, and
  // roughly 60% of jobs fault (loose bounds: this is a sanity band, not a
  // statistical test).
  EXPECT_EQ(4u, kinds_seen.size());
  EXPECT_GT(faulted, 500 * 0.45);
  EXPECT_LT(faulted, 500 * 0.75);

  // Re-asking about an id after unrelated queries gives the same answer:
  // the schedule is keyed per job, not positional.
  const JobFault first = a.jobFault(123);
  EXPECT_EQ(int(first.kind), int(a.jobFault(123).kind));
  EXPECT_EQ(first.at_event, a.jobFault(123).at_event);

  // A different seed produces a different schedule somewhere.
  const chaos::FaultInjector c(soakishPlan(43));
  bool differs = false;
  for (int id = 0; id < 500 && !differs; ++id)
    differs = int(a.jobFault(id).kind) != int(c.jobFault(id).kind);
  EXPECT_TRUE(differs);
}

TEST(ChaosInjector, DisabledPlanInjectsNothing) {
  FaultPlan p;
  p.seed = 99;  // a seed alone does not enable chaos; rates do
  const chaos::FaultInjector inj(p);
  for (int id = 0; id < 100; ++id) EXPECT_TRUE(inj.jobFault(id).none());
}

// ---------------------------------------------------------------------------
// Offline: BatchScheduler honors launch faults, ignores stall/death
// ---------------------------------------------------------------------------

TEST(ChaosOffline, BatchSchedulerFailsExactlyTheLaunchFaultedJobs) {
  const FaultPlan plan = soakishPlan(7);
  const chaos::FaultInjector injector(plan);

  sched::SchedulerOptions opt;
  opt.num_devices = 2;
  opt.injector = &injector;
  sched::BatchScheduler scheduler(opt);
  const int kJobs = 16;
  for (int i = 0; i < kJobs; ++i)
    scheduler.submit(tinyProblem(), tinyGolden(), chaosJobConfig(),
                     "offline" + std::to_string(i));
  const sched::BatchReport& report = scheduler.runAll();

  int launch_faulted = 0, device_faulted = 0;
  for (int id = 0; id < kJobs; ++id) {
    SCOPED_TRACE(id);
    const sched::JobResult& r = scheduler.result(id);
    const JobFault f = injector.jobFault(id);
    if (f.kind == FaultKind::kLaunchFault) {
      ++launch_faulted;
      EXPECT_TRUE(r.failed);
      EXPECT_NE(std::string::npos, r.error.find("LaunchFault")) << r.error;
    } else {
      // Stall/death decisions are ignored offline — the batch scheduler has
      // no watchdog, so nothing could ever resolve them.
      if (!f.none()) ++device_faulted;
      EXPECT_FALSE(r.failed) << r.error;
      EXPECT_EQ(faultFreeHash(), imageHash(r.run.image));
    }
  }
  // The chosen seed exercises both branches.
  EXPECT_GT(launch_faulted, 0);
  EXPECT_GT(device_faulted, 0);
  EXPECT_EQ(launch_faulted, report.jobs_failed);
}

// ---------------------------------------------------------------------------
// Online dispatcher: forced faults, watchdog, migration
// ---------------------------------------------------------------------------

TEST(ChaosDispatcher, ForcedLaunchFaultFailsTheJobNotTheDevice) {
  svc::DispatcherOptions opt;
  opt.num_devices = 1;
  opt.queue_capacity = 8;
  svc::Dispatcher dispatcher(opt);

  svc::JobSpec faulty = chaosJob("faulty");
  faulty.fault = chaos::parseFaultSpec("launch@1");
  const int bad_id = dispatcher.submit(faulty).job_id;
  const int good_id = dispatcher.submit(chaosJob("good")).job_id;

  const svc::JobStatus bad = dispatcher.waitTerminal(bad_id);
  EXPECT_EQ(svc::JobState::kFailed, bad.state);
  EXPECT_NE(std::string::npos, bad.error.find("LaunchFault")) << bad.error;
  EXPECT_EQ(0, bad.migrations);

  // The device survives a corrupted launch; the next job runs clean.
  const svc::JobStatus good = dispatcher.waitTerminal(good_id);
  EXPECT_EQ(svc::JobState::kDone, good.state);
  EXPECT_EQ(faultFreeHash(), good.image_hash);

  const svc::SvcReport& rep = dispatcher.drain();
  EXPECT_EQ(1u, rep.jobs_failed);
  EXPECT_EQ(0u, rep.devices_failed);
  EXPECT_EQ(0u, rep.jobs_migrated);
}

TEST(ChaosDispatcher, StallMigratesRunningAndQueuedJobsToSurvivors) {
  svc::DispatcherOptions opt;
  opt.num_devices = 2;
  opt.queue_capacity = 16;
  opt.watchdog_ms = 150.0;
  svc::Dispatcher dispatcher(opt);

  // Deterministic lane: job 0 and 2 start on device 0, 1 and 3 on device 1.
  // Job 0 stalls device 0 mid-run; the watchdog must fail the device,
  // re-lane queued job 2, and migrate job 0 itself when the stall unwinds.
  svc::JobSpec stall = chaosJob("stall0");
  stall.fault = chaos::parseFaultSpec("stall@1");
  std::vector<int> ids;
  ids.push_back(dispatcher.submit(stall).job_id);
  for (int i = 1; i < 4; ++i)
    ids.push_back(dispatcher.submit(chaosJob("det" + std::to_string(i))).job_id);

  for (int id : ids) {
    const svc::JobStatus s = dispatcher.waitTerminal(id);
    SCOPED_TRACE(s.name);
    EXPECT_EQ(svc::JobState::kDone, s.state) << s.error;
    // Migration preserves bit-identity: a migrated job re-runs clean and
    // results are device-independent.
    EXPECT_EQ(faultFreeHash(), s.image_hash);
  }
  EXPECT_EQ(1, dispatcher.status(ids[0]).migrations);
  EXPECT_EQ(1, dispatcher.status(ids[2]).migrations);

  const svc::SvcReport& rep = dispatcher.drain();
  EXPECT_EQ(4u, rep.jobs_done);
  EXPECT_EQ(0u, rep.jobs_failed);
  EXPECT_EQ(1u, rep.devices_failed);
  ASSERT_EQ(1u, rep.failed_devices.size());
  EXPECT_EQ(0, rep.failed_devices[0]);
  EXPECT_EQ(2u, rep.jobs_migrated);  // the stalled run + the queued det job
}

TEST(ChaosDispatcher, DeathAtDispatchMigratesTheJob) {
  svc::DispatcherOptions opt;
  opt.num_devices = 2;
  opt.queue_capacity = 8;
  opt.watchdog_ms = 150.0;
  svc::Dispatcher dispatcher(opt);

  svc::JobSpec dying = chaosJob("dying");
  dying.fault = chaos::parseFaultSpec("death");
  const int id = dispatcher.submit(dying).job_id;

  const svc::JobStatus s = dispatcher.waitTerminal(id);
  EXPECT_EQ(svc::JobState::kDone, s.state) << s.error;
  EXPECT_EQ(1, s.migrations);
  EXPECT_EQ(1, s.device);  // re-ran on the survivor
  EXPECT_EQ(faultFreeHash(), s.image_hash);

  const svc::SvcReport& rep = dispatcher.drain();
  EXPECT_EQ(1u, rep.devices_failed);
  EXPECT_EQ(1u, rep.jobs_migrated);
}

TEST(ChaosDispatcher, StallWithDisarmedWatchdogIsDroppedNotHung) {
  // Nothing could ever resolve a stall when no watchdog watches: the
  // dispatcher must drop the fault at dispatch and run the job clean.
  svc::DispatcherOptions opt;
  opt.num_devices = 1;
  svc::Dispatcher dispatcher(opt);
  svc::JobSpec spec = chaosJob("ignored-stall");
  spec.fault = chaos::parseFaultSpec("stall@0");
  const svc::JobStatus s =
      dispatcher.waitTerminal(dispatcher.submit(spec).job_id);
  EXPECT_EQ(svc::JobState::kDone, s.state) << s.error;
  EXPECT_EQ(0, s.migrations);
  EXPECT_EQ(faultFreeHash(), s.image_hash);
  EXPECT_EQ(0u, dispatcher.drain().devices_failed);
}

TEST(ChaosDispatcher, LosingEveryDeviceFailsJobsAndRejectsSubmits) {
  svc::DispatcherOptions opt;
  opt.num_devices = 1;
  opt.queue_capacity = 8;
  opt.watchdog_ms = 120.0;
  svc::Dispatcher dispatcher(opt);

  svc::JobSpec stall = chaosJob("stall");
  stall.fault = chaos::parseFaultSpec("stall@0");
  std::vector<int> ids;
  ids.push_back(dispatcher.submit(stall).job_id);
  ids.push_back(dispatcher.submit(chaosJob("q1")).job_id);
  ids.push_back(dispatcher.submit(chaosJob("q2", /*deterministic=*/false)).job_id);

  // Every job dead-ends — exactly one terminal state each, no hang.
  for (int id : ids) {
    const svc::JobStatus s = dispatcher.waitTerminal(id);
    SCOPED_TRACE(s.name);
    EXPECT_EQ(svc::JobState::kFailed, s.state);
    EXPECT_NE(std::string::npos, s.error.find("no surviving devices"))
        << s.error;
  }

  const svc::SubmitOutcome out = dispatcher.submit(chaosJob("late"));
  EXPECT_FALSE(out.accepted);
  EXPECT_NE(std::string::npos, out.reason.find("no surviving devices"))
      << out.reason;

  const svc::SvcReport& rep = dispatcher.drain();  // returns: clean drain
  EXPECT_EQ(3u, rep.jobs_failed);
  EXPECT_EQ(1u, rep.devices_failed);
}

// ---------------------------------------------------------------------------
// Replay determinism: same plan, same jobs -> same outcomes and bits
// ---------------------------------------------------------------------------

struct ChaosRunOutcome {
  std::vector<int> states;
  std::vector<int> migrations;
  std::vector<std::uint64_t> hashes;  // 0 when the job has no image
  std::uint64_t devices_failed = 0;
};

ChaosRunOutcome runPlannedChaosBatch(const FaultPlan& plan, int jobs) {
  svc::DispatcherOptions opt;
  opt.num_devices = 2;
  opt.queue_capacity = jobs;
  opt.fault_plan = plan;
  opt.watchdog_ms = 150.0;
  svc::Dispatcher dispatcher(opt);
  std::vector<int> ids;
  for (int i = 0; i < jobs; ++i)
    ids.push_back(dispatcher.submit(chaosJob("job" + std::to_string(i))).job_id);
  ChaosRunOutcome out;
  for (int id : ids) {
    const svc::JobStatus s = dispatcher.waitTerminal(id);
    out.states.push_back(int(s.state));
    out.migrations.push_back(s.migrations);
    out.hashes.push_back(s.has_image ? s.image_hash : 0u);
  }
  out.devices_failed = dispatcher.drain().devices_failed;
  return out;
}

TEST(ChaosDispatcher, SameSeedReplaysTheSameFaultsMigrationsAndBits) {
  // Stall/death restricted to device 1 so a survivor always exists and the
  // run is replay-deterministic end to end.
  FaultPlan plan;
  plan.seed = 20260808;
  plan.launch_fault_rate = 0.2;
  plan.stall_rate = 0.15;
  plan.death_rate = 0.1;
  plan.target_devices = {1};

  const int kJobs = 12;
  const ChaosRunOutcome a = runPlannedChaosBatch(plan, kJobs);
  const ChaosRunOutcome b = runPlannedChaosBatch(plan, kJobs);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.hashes, b.hashes);
  EXPECT_EQ(a.devices_failed, b.devices_failed);

  // And every job that produced an image — unaffected or migrated — is
  // bit-identical to the fault-free reference.
  int done = 0, failed = 0;
  for (int i = 0; i < kJobs; ++i) {
    if (a.states[i] == int(svc::JobState::kDone)) {
      ++done;
      EXPECT_EQ(faultFreeHash(), a.hashes[i]) << i;
    } else {
      ++failed;
      EXPECT_EQ(int(svc::JobState::kFailed), a.states[i]) << i;
    }
  }
  EXPECT_GT(done, 0);
  EXPECT_GT(failed, 0);  // the seed really injected launch faults
}

// ---------------------------------------------------------------------------
// The wire `chaos` verb and the submit `fault` field
// ---------------------------------------------------------------------------

/// TinySource twin of test_svc.cpp's: serves the cached tiny problem for
/// every case index.
class ChaosTinySource : public svc::JobSource {
 public:
  Case get(int) override { return Case{tinyProblem(), tinyGolden()}; }
};

struct ChaosService {
  explicit ChaosService(int devices, double watchdog_ms = 0.0) {
    svc::ServerOptions opt;
    opt.dispatch.num_devices = devices;
    opt.dispatch.queue_capacity = 16;
    opt.dispatch.watchdog_ms = watchdog_ms;
    opt.base_config = chaosJobConfig();
    server = std::make_unique<svc::Server>(opt, source);
  }
  svc::Client connect() { return svc::Client(server->port()); }

  ChaosTinySource source;
  std::unique_ptr<svc::Server> server;
};

TEST(ChaosWire, ChaosVerbInstallsReportsAndDisablesPlans) {
  ChaosService service(/*devices=*/2);
  svc::Client client = service.connect();

  // Read-only chaos on a plain server: disabled, watchdog disarmed.
  obs::JsonValue resp = client.chaos();
  EXPECT_FALSE(resp.find("enabled")->bool_v);
  EXPECT_EQ(0.0, resp.find("watchdog_ms")->num_v);

  // A forced stall is refused while the watchdog is disarmed — accepting it
  // would park a device nothing can recover.
  svc::SubmitParams stall;
  stall.fault = "stall@0";
  const svc::Client::SubmitResult refused = client.submit(stall);
  EXPECT_FALSE(refused.accepted);
  EXPECT_NE(std::string::npos, refused.error.find("watchdog"))
      << refused.error;

  // A malformed fault spec is rejected at the door, not at dispatch.
  svc::SubmitParams bad;
  bad.fault = "explode@now";
  EXPECT_FALSE(client.submit(bad).accepted);

  // Install a plan over the wire; the response and a later read-back agree.
  FaultPlan plan;
  plan.seed = 99;
  plan.launch_fault_rate = 1.0;  // every dispatched job launch-faults
  resp = client.chaos(plan, /*watchdog_ms=*/500.0);
  EXPECT_TRUE(resp.find("enabled")->bool_v);
  EXPECT_EQ(500.0, resp.find("watchdog_ms")->num_v);
  EXPECT_EQ(99.0, resp.find("plan")->find("seed")->num_v);

  const svc::Client::JobInfo doomed =
      client.result(client.submit(svc::SubmitParams{}).job_id);
  EXPECT_EQ("failed", doomed.state);
  EXPECT_NE(std::string::npos, doomed.error.find("LaunchFault"))
      << doomed.error;

  // The stats document carries the chaos section.
  const obs::JsonValue stats = client.stats();
  const obs::JsonValue* chaos_doc = stats.find("chaos");
  ASSERT_NE(nullptr, chaos_doc);
  EXPECT_TRUE(chaos_doc->find("enabled")->bool_v);
  EXPECT_EQ(99.0, chaos_doc->find("plan")->find("seed")->num_v);

  // An all-zero-rate plan turns chaos back off; jobs run clean again.
  resp = client.chaos(FaultPlan{}, 500.0);
  EXPECT_FALSE(resp.find("enabled")->bool_v);
  const svc::Client::JobInfo clean =
      client.result(client.submit(svc::SubmitParams{}).job_id);
  EXPECT_EQ("done", clean.state);
  client.drain();
}

TEST(ChaosWire, ForcedStallOverTheWireMigratesAndReportsIt) {
  ChaosService service(/*devices=*/2, /*watchdog_ms=*/150.0);
  svc::Client client = service.connect();

  svc::SubmitParams p;
  p.fault = "stall@1";
  p.deterministic = true;
  p.name = "wire-stall";
  const int id = client.submit(p).job_id;
  const svc::Client::JobInfo info = client.result(id);
  EXPECT_EQ("done", info.state) << info.error;

  const obs::JsonValue chaos_doc = client.chaos();
  EXPECT_EQ(1.0, chaos_doc.find("devices_failed")->num_v);
  EXPECT_GE(chaos_doc.find("jobs_migrated")->num_v, 1.0);

  const obs::JsonValue report = client.drain();
  EXPECT_EQ(1.0, report.find("devices_failed")->num_v);
  ASSERT_TRUE(report.find("failed_devices")->isArray());
  EXPECT_EQ(1u, report.find("failed_devices")->array_v.size());
  // The migrated job's report entry records its migration count.
  bool found = false;
  for (const obs::JsonValue& j : report.find("jobs")->array_v) {
    if (int(j.find("job_id")->num_v) != id) continue;
    found = true;
    ASSERT_NE(nullptr, j.find("migrations"));
    EXPECT_EQ(1.0, j.find("migrations")->num_v);
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// The seeded reliability soak gate
// ---------------------------------------------------------------------------

std::uint64_t envU64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  return v && *v ? std::strtoull(v, nullptr, 10) : def;
}

TEST(ChaosSoak, SeededSoakGate) {
  const std::uint64_t seed = envU64("GPUMBIR_SOAK_SEED", 20260808);
  const int jobs = int(envU64("GPUMBIR_SOAK_JOBS", 300));
  std::fprintf(stderr,
               "chaos soak: seed=%llu jobs=%d — replay with\n"
               "  GPUMBIR_SOAK_SEED=%llu GPUMBIR_SOAK_JOBS=%d ./test_chaos "
               "--gtest_filter='ChaosSoak.*'\n",
               (unsigned long long)seed, jobs, (unsigned long long)seed, jobs);

  // Stall/death restricted to devices {1,3}: the worst case leaves two
  // survivors, so the soak can always finish. Launch faults hit any device.
  FaultPlan plan;
  plan.seed = seed;
  plan.launch_fault_rate = 0.05;
  plan.stall_rate = 0.03;
  plan.death_rate = 0.02;
  plan.target_devices = {1, 3};

  svc::DispatcherOptions opt;
  opt.num_devices = 4;
  opt.queue_capacity = 64;
  opt.fault_plan = plan;
  opt.watchdog_ms = 250.0;
  svc::Dispatcher dispatcher(opt);

  // Mixed traffic, all decisions drawn from the printed seed: roughly half
  // deterministic-lane jobs, half priority-lane with spread priorities, a
  // few with real (generous) deadlines, and ~5% cancelled right after
  // admission. Admission rejections (bounded queue) back off and retry so
  // the soak really pushes every job through the service.
  Rng traffic = Rng::forStream(seed, 0, 0x50AC);
  std::vector<int> accepted;
  std::vector<int> det_jobs;
  std::uint64_t rejected = 0;
  for (int i = 0; i < jobs; ++i) {
    svc::JobSpec spec = chaosJob("soak" + std::to_string(i),
                                 /*deterministic=*/traffic.below(2) == 0);
    if (!spec.deterministic) {
      spec.priority = int(traffic.below(5));
      if (traffic.below(8) == 0) spec.deadline_ms = 30000.0;
    }
    const bool cancel_it = traffic.below(20) == 0;
    svc::SubmitOutcome out = dispatcher.submit(spec);
    while (!out.accepted) {
      ++rejected;  // backpressure observed; retry after a beat
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      out = dispatcher.submit(spec);
    }
    accepted.push_back(out.job_id);
    if (spec.deterministic && !cancel_it) det_jobs.push_back(out.job_id);
    if (cancel_it) dispatcher.cancel(out.job_id);
  }

  // No lost jobs: every accepted job reaches exactly one terminal state.
  std::uint64_t done = 0, cancelled = 0, failed = 0, missed = 0, migrated = 0;
  for (int id : accepted) {
    const svc::JobStatus s = dispatcher.waitTerminal(id);
    ASSERT_TRUE(svc::isTerminal(s.state)) << id;
    migrated += std::uint64_t(s.migrations);
    switch (s.state) {
      case svc::JobState::kDone: ++done; break;
      case svc::JobState::kCancelled: ++cancelled; break;
      case svc::JobState::kFailed: ++failed; break;
      case svc::JobState::kDeadlineMissed: ++missed; break;
      default: FAIL() << "non-terminal state for job " << id;
    }
    // Unaffected and migrated jobs alike: every job that ran to completion
    // matches the fault-free reference bit for bit. (Cancelled jobs stop at
    // an iteration boundary, so their partial image legitimately differs.)
    if (s.state == svc::JobState::kDone && s.has_image)
      EXPECT_EQ(faultFreeHash(), s.image_hash) << id;
  }
  EXPECT_EQ(accepted.size(), done + cancelled + failed + missed);

  // Deterministic-lane jobs that ran are bit-identical to a fault-free run.
  for (int id : det_jobs) {
    const svc::JobStatus s = dispatcher.status(id);
    if (s.state != svc::JobState::kDone) continue;
    EXPECT_EQ(faultFreeHash(), s.image_hash) << id;
  }

  // Clean drain: returns (no hang), and its accounting matches what we saw
  // job by job.
  const svc::SvcReport& rep = dispatcher.drain();
  EXPECT_EQ(accepted.size(), rep.jobs_submitted);
  EXPECT_EQ(rejected, rep.admission_rejected);
  EXPECT_EQ(done, rep.jobs_done);
  EXPECT_EQ(cancelled, rep.jobs_cancelled);
  EXPECT_EQ(failed, rep.jobs_failed);
  EXPECT_EQ(missed, rep.jobs_deadline_missed);
  EXPECT_EQ(migrated, rep.jobs_migrated);
  EXPECT_LE(rep.devices_failed, 2u);  // only devices 1 and 3 are targeted
  for (int d : rep.failed_devices) EXPECT_TRUE(d == 1 || d == 3) << d;
  EXPECT_EQ(accepted.size(), rep.jobs.size());

  std::fprintf(stderr,
               "chaos soak: %zu accepted (%llu rejected) -> %llu done, %llu "
               "cancelled, %llu failed, %llu deadline-missed; %llu devices "
               "failed, %llu migrations\n",
               accepted.size(), (unsigned long long)rejected,
               (unsigned long long)done, (unsigned long long)cancelled,
               (unsigned long long)failed, (unsigned long long)missed,
               (unsigned long long)rep.devices_failed,
               (unsigned long long)rep.jobs_migrated);
}

}  // namespace
}  // namespace mbir::test
