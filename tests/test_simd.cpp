// Conformance suite for the SIMD lane-group execution layer (core/simd.h).
//
// The load-bearing claim is bit-identity: every op must produce the same
// bits on the scalar and AVX2 paths, for every length (masked tails), every
// alignment, and randomized inputs — and the engines built on top must
// therefore produce identical images, profiler stats, modeled seconds and
// race-detector streams whichever path runs. Both layers are asserted here:
// op-level (randomized, with an independent reference emulation of the
// canonical lane semantics) and engine-level (GPU-ICD transformed + naive,
// quantized + float, PSV-ICD, projector, and the reconstruct() facade).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/aligned.h"
#include "core/simd.h"
#include "geom/projector.h"
#include "gpuicd/gpu_icd.h"
#include "gsim/executor.h"
#include "psv/psv_icd.h"
#include "recon/reconstructor.h"
#include "test_support.h"

namespace mbir {
namespace {

bool avx2Available() { return avx2SimdOps() != nullptr; }

// ---------------------------------------------------------------------------
// Mode parsing / resolution
// ---------------------------------------------------------------------------

TEST(SimdMode, ParseAcceptsDocumentedSpellings) {
  EXPECT_EQ(parseSimdMode("off"), SimdMode::kOff);
  EXPECT_EQ(parseSimdMode("scalar"), SimdMode::kOff);
  EXPECT_EQ(parseSimdMode("auto"), SimdMode::kAuto);
  EXPECT_EQ(parseSimdMode(""), SimdMode::kAuto);
  EXPECT_EQ(parseSimdMode("avx2"), SimdMode::kAvx2);
  EXPECT_THROW(parseSimdMode("sse9"), Error);
  EXPECT_THROW(parseSimdMode("ON"), Error);
}

TEST(SimdMode, ResolveOffIsScalar) {
  EXPECT_STREQ(resolveSimdOps(SimdMode::kOff).name, "scalar");
}

TEST(SimdMode, ResolveAutoNeverFails) {
  const SimdOps& ops = resolveSimdOps(SimdMode::kAuto);
  if (avx2Available()) {
    EXPECT_STREQ(ops.name, "avx2");
  } else {
    EXPECT_STREQ(ops.name, "scalar");
  }
}

TEST(SimdMode, ForcedAvx2ThrowsWhenUnavailable) {
  if (avx2Available()) {
    EXPECT_STREQ(resolveSimdOps(SimdMode::kAvx2).name, "avx2");
  } else {
    EXPECT_THROW(resolveSimdOps(SimdMode::kAvx2), Error);
  }
}

// Save/restore GPUMBIR_SIMD so tests that poke it don't change the path
// the rest of the binary runs on (CI forces the knob process-wide).
class ScopedSimdEnv {
 public:
  ScopedSimdEnv() {
    const char* prev = std::getenv("GPUMBIR_SIMD");
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
  }
  ~ScopedSimdEnv() {
    if (had_) {
      ::setenv("GPUMBIR_SIMD", saved_.c_str(), 1);
    } else {
      ::unsetenv("GPUMBIR_SIMD");
    }
  }

 private:
  bool had_ = false;
  std::string saved_;
};

TEST(SimdMode, EnvKnobSelectsPath) {
  ScopedSimdEnv restore;
  ::setenv("GPUMBIR_SIMD", "off", 1);
  EXPECT_STREQ(resolveSimdOps(SimdMode::kDefault).name, "scalar");
  ::setenv("GPUMBIR_SIMD", "auto", 1);
  const char* auto_path = resolveSimdOps(SimdMode::kDefault).name;
  EXPECT_STREQ(auto_path, avx2Available() ? "avx2" : "scalar");
}

// ---------------------------------------------------------------------------
// Canonical lane semantics: independent reference emulation
// ---------------------------------------------------------------------------

// Reference implementation of the documented contract, written without any
// of the production wrappers: element i lands in lane i % kSimdLanes,
// per-element math is m = w*a (double), t1 -= m*e, t2 += m*a.
void referenceThetaRow(const float* a, const float* e, const float* w, int n,
                       ThetaLanes& lanes) {
  for (int i = 0; i < n; ++i) {
    const int l = i % kSimdLanes;
    const double m = double(w[i]) * double(a[i]);
    lanes.t1[l] -= m * double(e[i]);
    lanes.t2[l] += m * double(a[i]);
  }
}

std::vector<float> randomFloats(std::mt19937& rng, int n, float lo = -4.0f,
                                float hi = 4.0f) {
  std::uniform_real_distribution<float> d(lo, hi);
  std::vector<float> out(std::size_t(std::max(n, 0)));
  for (float& v : out) v = d(rng);
  return out;
}

TEST(SimdSemantics, ThetaRowMatchesReferenceEmulation) {
  std::mt19937 rng(7);
  for (const SimdOps* ops : {&scalarSimdOps(), avx2SimdOps()}) {
    if (!ops) continue;
    for (int n : {0, 1, 3, 7, 8, 9, 16, 19, 24, 31, 67}) {
      const auto a = randomFloats(rng, n);
      const auto e = randomFloats(rng, n);
      const auto w = randomFloats(rng, n, 0.0f, 2.0f);
      ThetaLanes got, want;
      got.reset();
      want.reset();
      ops->theta_row_f(a.data(), e.data(), w.data(), n, got);
      referenceThetaRow(a.data(), e.data(), w.data(), n, want);
      EXPECT_EQ(0, std::memcmp(&got, &want, sizeof got))
          << ops->name << " n=" << n;
    }
  }
}

TEST(SimdSemantics, ReduceLanesIsFixedLeftToRightOrder) {
  alignas(32) double lanes[kSimdLanes] = {1e16, 1.0,  -1e16, 3.5,
                                          2e-9, -7.0, 1e16,  -1e16};
  double want = lanes[0];
  for (int l = 1; l < kSimdLanes; ++l) want += lanes[l];
  EXPECT_EQ(reduceLanes(lanes), want);
}

TEST(SimdSemantics, LanesAccumulateAcrossRowCalls) {
  // The engines keep one ThetaLanes per voxel and feed it every footprint
  // row; each row restarts at lane 0 and adds onto the carried partials.
  // Two chained op calls must therefore equal two chained reference calls.
  std::mt19937 rng(11);
  const int n1 = 13, n2 = 19;
  const auto a1 = randomFloats(rng, n1), a2 = randomFloats(rng, n2);
  const auto e1 = randomFloats(rng, n1), e2 = randomFloats(rng, n2);
  const auto w1 = randomFloats(rng, n1, 0.0f, 2.0f);
  const auto w2 = randomFloats(rng, n2, 0.0f, 2.0f);
  for (const SimdOps* ops : {&scalarSimdOps(), avx2SimdOps()}) {
    if (!ops) continue;
    ThetaLanes got, want;
    got.reset();
    want.reset();
    ops->theta_row_f(a1.data(), e1.data(), w1.data(), n1, got);
    ops->theta_row_f(a2.data(), e2.data(), w2.data(), n2, got);
    referenceThetaRow(a1.data(), e1.data(), w1.data(), n1, want);
    referenceThetaRow(a2.data(), e2.data(), w2.data(), n2, want);
    EXPECT_EQ(0, std::memcmp(&got, &want, sizeof got)) << ops->name;
  }
}

// ---------------------------------------------------------------------------
// Scalar vs AVX2 bit-identity, randomized (every op, tails, alignments)
// ---------------------------------------------------------------------------

class SimdBitIdentity : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!avx2Available()) GTEST_SKIP() << "host has no AVX2+FMA";
  }
  std::mt19937 rng_{2026};
};

TEST_F(SimdBitIdentity, ThetaRowFloatAllLengthsAndOffsets) {
  const SimdOps& sc = scalarSimdOps();
  const SimdOps& vx = *avx2SimdOps();
  for (int n = 0; n <= 70; ++n) {
    for (int off : {0, 1, 3}) {  // misalign inputs off the 32-byte grid
      const auto a = randomFloats(rng_, n + off);
      const auto e = randomFloats(rng_, n + off);
      const auto w = randomFloats(rng_, n + off, 0.0f, 2.0f);
      ThetaLanes ls, lv;
      ls.reset();
      lv.reset();
      sc.theta_row_f(a.data() + off, e.data() + off, w.data() + off, n, ls);
      vx.theta_row_f(a.data() + off, e.data() + off, w.data() + off, n, lv);
      ASSERT_EQ(0, std::memcmp(&ls, &lv, sizeof ls)) << "n=" << n
                                                     << " off=" << off;
    }
  }
}

TEST_F(SimdBitIdentity, ThetaRowQuantizedAllLengths) {
  const SimdOps& sc = scalarSimdOps();
  const SimdOps& vx = *avx2SimdOps();
  std::uniform_int_distribution<int> q(0, 255);
  for (int n = 0; n <= 70; ++n) {
    std::vector<std::uint8_t> qs(std::size_t(std::max(n, 1)));
    for (auto& v : qs) v = std::uint8_t(q(rng_));
    const auto e = randomFloats(rng_, n);
    const auto w = randomFloats(rng_, n, 0.0f, 2.0f);
    const float scale = 0.0123f;
    ThetaLanes ls, lv;
    ls.reset();
    lv.reset();
    sc.theta_row_q(qs.data(), scale, e.data(), w.data(), n, ls);
    vx.theta_row_q(qs.data(), scale, e.data(), w.data(), n, lv);
    ASSERT_EQ(0, std::memcmp(&ls, &lv, sizeof ls)) << "n=" << n;
  }
}

TEST_F(SimdBitIdentity, ElementwiseOpsAllLengthsWithGuards) {
  const SimdOps& sc = scalarSimdOps();
  const SimdOps& vx = *avx2SimdOps();
  constexpr float kGuard = 1234.5f;
  for (int n = 0; n <= 70; ++n) {
    const int cap = n + 8;  // guard zone the masked tail must not touch
    const auto a = randomFloats(rng_, cap);
    const auto orig = randomFloats(rng_, cap);
    const auto w = randomFloats(rng_, cap, 0.0f, 2.0f);
    const float delta = 0.375f, xv = -1.25f;

    std::vector<float> es(a.begin(), a.end()), ev(a.begin(), a.end());
    std::fill(es.begin() + n, es.end(), kGuard);
    std::fill(ev.begin() + n, ev.end(), kGuard);
    sc.err_row_f(a.data(), delta, es.data(), n);
    vx.err_row_f(a.data(), delta, ev.data(), n);
    ASSERT_EQ(0, std::memcmp(es.data(), ev.data(), es.size() * 4)) << n;
    for (int i = n; i < cap; ++i) ASSERT_EQ(es[std::size_t(i)], kGuard);

    std::vector<float> ds(std::size_t(cap), kGuard), dv(ds);
    sc.apply_delta_row(a.data(), orig.data(), ds.data(), n);
    vx.apply_delta_row(a.data(), orig.data(), dv.data(), n);
    ASSERT_EQ(0, std::memcmp(ds.data(), dv.data(), ds.size() * 4)) << n;
    for (int i = n; i < cap; ++i) ASSERT_EQ(ds[std::size_t(i)], kGuard);

    std::vector<float> ys(orig.begin(), orig.end()), yv(orig.begin(),
                                                        orig.end());
    std::fill(ys.begin() + n, ys.end(), kGuard);
    std::fill(yv.begin() + n, yv.end(), kGuard);
    sc.axpy_row(w.data(), xv, ys.data(), n);
    vx.axpy_row(w.data(), xv, yv.data(), n);
    ASSERT_EQ(0, std::memcmp(ys.data(), yv.data(), ys.size() * 4)) << n;
    for (int i = n; i < cap; ++i) ASSERT_EQ(ys[std::size_t(i)], kGuard);
  }
}

TEST_F(SimdBitIdentity, ErrRowQuantizedAndDotRowAllLengths) {
  const SimdOps& sc = scalarSimdOps();
  const SimdOps& vx = *avx2SimdOps();
  std::uniform_int_distribution<int> q(0, 255);
  for (int n = 0; n <= 70; ++n) {
    std::vector<std::uint8_t> qs(std::size_t(std::max(n, 1)));
    for (auto& v : qs) v = std::uint8_t(q(rng_));
    const auto base = randomFloats(rng_, n);
    std::vector<float> es(base.begin(), base.end()), ev(base);
    sc.err_row_q(qs.data(), 0.031f, 0.625f, es.data(), n);
    vx.err_row_q(qs.data(), 0.031f, 0.625f, ev.data(), n);
    ASSERT_EQ(0, std::memcmp(es.data(), ev.data(), es.size() * 4)) << n;

    const auto w = randomFloats(rng_, n);
    const auto s = randomFloats(rng_, n);
    alignas(32) double accs[kSimdLanes] = {}, accv[kSimdLanes] = {};
    sc.dot_row(w.data(), s.data(), n, accs);
    vx.dot_row(w.data(), s.data(), n, accv);
    ASSERT_EQ(0, std::memcmp(accs, accv, sizeof accs)) << n;
  }
}

// Band-covering window ops: scalar and AVX2 must touch exactly the same
// covering groups and produce identical bits, for every band placement —
// including windows that are not a multiple of the lane width.
TEST_F(SimdBitIdentity, WindowOpsAllBandPlacements) {
  const SimdOps& sc = scalarSimdOps();
  const SimdOps& vx = *avx2SimdOps();
  std::uniform_int_distribution<int> q(0, 255);
  for (int win : {8, 16, 19, 29, 32}) {
    for (int i0 = 0; i0 <= win; ++i0) {
      for (int i1 = i0; i1 <= win; ++i1) {
        // A values zero-padded outside the band, like chunk windows.
        auto a = randomFloats(rng_, win);
        std::vector<std::uint8_t> qs(std::size_t(win), 0);
        for (int i = i0; i < i1; ++i) qs[std::size_t(i)] = std::uint8_t(q(rng_));
        for (int i = 0; i < win; ++i)
          if (i < i0 || i >= i1) a[std::size_t(i)] = 0.0f;
        const auto e = randomFloats(rng_, win);
        const auto w = randomFloats(rng_, win, 0.0f, 2.0f);
        const float scale = 0.017f, delta = 0.4375f;

        ThetaLanes ls, lv;
        ls.reset();
        lv.reset();
        sc.theta_win_f(a.data(), e.data(), w.data(), i0, i1, win, ls);
        vx.theta_win_f(a.data(), e.data(), w.data(), i0, i1, win, lv);
        ASSERT_EQ(0, std::memcmp(&ls, &lv, sizeof ls))
            << "win=" << win << " i0=" << i0 << " i1=" << i1;

        ls.reset();
        lv.reset();
        sc.theta_win_q(qs.data(), scale, e.data(), w.data(), i0, i1, win, ls);
        vx.theta_win_q(qs.data(), scale, e.data(), w.data(), i0, i1, win, lv);
        ASSERT_EQ(0, std::memcmp(&ls, &lv, sizeof ls))
            << "win=" << win << " i0=" << i0 << " i1=" << i1;

        std::vector<float> es(e), ev(e);
        sc.err_win_f(a.data(), delta, es.data(), i0, i1, win);
        vx.err_win_f(a.data(), delta, ev.data(), i0, i1, win);
        ASSERT_EQ(0, std::memcmp(es.data(), ev.data(), es.size() * 4))
            << "win=" << win << " i0=" << i0 << " i1=" << i1;

        es = e;
        ev = e;
        sc.err_win_q(qs.data(), scale, delta, es.data(), i0, i1, win);
        vx.err_win_q(qs.data(), scale, delta, ev.data(), i0, i1, win);
        ASSERT_EQ(0, std::memcmp(es.data(), ev.data(), es.size() * 4))
            << "win=" << win << " i0=" << i0 << " i1=" << i1;
      }
    }
  }
}

// Skipping the groups outside the band must be invisible: on zero-padded
// data a window-theta call produces the exact accumulator bits of the
// full-window row call (the skipped elements only ever added +0.0).
TEST(SimdSemantics, WindowThetaEqualsFullWindowRowOnPaddedData) {
  std::mt19937 rng(23);
  std::uniform_int_distribution<int> q(0, 255);
  for (const SimdOps* ops : {&scalarSimdOps(), avx2SimdOps()}) {
    if (!ops) continue;
    for (int win : {16, 29, 32}) {
      for (int i0 : {0, 3, 9}) {
        for (int i1 : {i0, i0 + 1, i0 + 5, win}) {
          auto a = randomFloats(rng, win);
          std::vector<std::uint8_t> qs(std::size_t(win), 0);
          for (int i = i0; i < i1; ++i)
            qs[std::size_t(i)] = std::uint8_t(q(rng));
          for (int i = 0; i < win; ++i)
            if (i < i0 || i >= i1) a[std::size_t(i)] = 0.0f;
          const auto e = randomFloats(rng, win);
          const auto w = randomFloats(rng, win, 0.0f, 2.0f);

          ThetaLanes full, band;
          full.reset();
          band.reset();
          ops->theta_row_f(a.data(), e.data(), w.data(), win, full);
          ops->theta_win_f(a.data(), e.data(), w.data(), i0, i1, win, band);
          ASSERT_EQ(0, std::memcmp(&full, &band, sizeof full))
              << ops->name << " win=" << win << " i0=" << i0 << " i1=" << i1;

          full.reset();
          band.reset();
          ops->theta_row_q(qs.data(), 0.02f, e.data(), w.data(), win, full);
          ops->theta_win_q(qs.data(), 0.02f, e.data(), w.data(), i0, i1, win,
                           band);
          ASSERT_EQ(0, std::memcmp(&full, &band, sizeof full))
              << ops->name << " win=" << win << " i0=" << i0 << " i1=" << i1;
        }
      }
    }
  }
}

// Window err ops may only touch the covering groups — everything outside
// [i0 & ~7, min(roundUp8(i1), win)) must keep its exact prior bits.
TEST(SimdSemantics, WindowErrOpsLeaveUncoveredElementsUntouched) {
  std::mt19937 rng(29);
  for (const SimdOps* ops : {&scalarSimdOps(), avx2SimdOps()}) {
    if (!ops) continue;
    for (int win : {24, 29, 32}) {
      for (int i0 : {0, 5, 11}) {
        for (int i1 : {i0, i0 + 2, i0 + 9}) {
          auto a = randomFloats(rng, win);
          const auto e0 = randomFloats(rng, win);
          std::vector<float> e(e0);
          ops->err_win_f(a.data(), 0.8125f, e.data(), i0, i1, win);
          const int g0 = i0 & ~(kSimdLanes - 1);
          const int r8 = (i1 + kSimdLanes - 1) & ~(kSimdLanes - 1);
          const int cov = i1 > i0 ? std::min(r8, win) : g0;
          for (int i = 0; i < win; ++i) {
            if (i >= g0 && i < cov) continue;
            ASSERT_EQ(std::memcmp(&e[std::size_t(i)], &e0[std::size_t(i)], 4),
                      0)
                << ops->name << " win=" << win << " i0=" << i0
                << " i1=" << i1 << " i=" << i;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// KernelProfiler::transactions at lane-group granularity
// ---------------------------------------------------------------------------

TEST(KernelProfilerTransactions, EdgeCases) {
  gsim::DeviceSpec dev;  // transaction_bytes = 128
  ASSERT_EQ(dev.transaction_bytes, 128);
  gsim::KernelProfiler prof(dev);
  EXPECT_EQ(prof.transactions(0, 4, true), 0);
  EXPECT_EQ(prof.transactions(-5, 4, true), 0);
  EXPECT_EQ(prof.transactions(1, 4, true), 1);
  // One lane group of floats = 32 bytes: still one transaction.
  EXPECT_EQ(prof.transactions(kSimdLanes, 4, true), 1);
  // Four lane groups fill one 128-byte transaction exactly...
  EXPECT_EQ(prof.transactions(4 * kSimdLanes, 4, true), 1);
  // ...and one more element spills into a second.
  EXPECT_EQ(prof.transactions(4 * kSimdLanes + 1, 4, true), 2);
  // Misalignment adds exactly one straddle transaction.
  EXPECT_EQ(prof.transactions(4 * kSimdLanes, 4, false), 2);
  EXPECT_EQ(prof.transactions(1, 4, false), 2);
  // 8-byte (read_svb_as_double) and 1-byte (quantized A) element widths.
  EXPECT_EQ(prof.transactions(2 * kSimdLanes, 8, true), 1);
  EXPECT_EQ(prof.transactions(16 * kSimdLanes, 1, true), 1);
  EXPECT_EQ(prof.transactions(16 * kSimdLanes + 7, 1, true), 2);
}

// ---------------------------------------------------------------------------
// Engine-level both-ways bit-identity
// ---------------------------------------------------------------------------

class SimdEngineIdentity : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!avx2Available()) GTEST_SKIP() << "host has no AVX2+FMA";
    problem_ = &test::tinyProblem();
  }

  GpuRunStats runGpu(GpuIcdOptions opt, Image2D& x_out) {
    x_out = problem_->fbpInitialImage();
    Sinogram e = problem_->initialError(x_out);
    opt.race_check.enabled = true;
    GpuIcd icd(problem_->view(), test::tinyGpuOptions(std::move(opt)));
    return icd.run(x_out, e, [&](const GpuIterationInfo& info) {
      return info.equits < 3.0;
    });
  }

  void expectGpuBothWaysIdentical(OptimFlags flags) {
    GpuIcdOptions scalar_opt;
    scalar_opt.flags = flags;
    scalar_opt.simd = gsim::SimdMode::kOff;
    GpuIcdOptions simd_opt;
    simd_opt.flags = flags;
    simd_opt.simd = gsim::SimdMode::kAvx2;
    Image2D xs, xv;
    const GpuRunStats ss = runGpu(scalar_opt, xs);
    const GpuRunStats sv = runGpu(simd_opt, xv);
    test::expectGpuRunsBitIdentical(ss, xs, sv, xv);
    // Race-detector streams: same launches, same declared ranges, same
    // diagnoses on both paths.
    EXPECT_EQ(ss.race_launches_checked, sv.race_launches_checked);
    EXPECT_EQ(ss.race_ranges_checked, sv.race_ranges_checked);
    EXPECT_EQ(ss.race_reports, sv.race_reports);
    ASSERT_EQ(ss.per_kernel.size(), sv.per_kernel.size());
    for (const auto& [name, totals] : ss.per_kernel) {
      const auto it = sv.per_kernel.find(name);
      ASSERT_NE(it, sv.per_kernel.end()) << name;
      EXPECT_EQ(totals.seconds, it->second.seconds) << name;
      EXPECT_EQ(totals.launches, it->second.launches) << name;
    }
  }

  const OwnedProblem* problem_;
};

TEST_F(SimdEngineIdentity, GpuIcdTransformedQuantized) {
  expectGpuBothWaysIdentical(OptimFlags{});
}

TEST_F(SimdEngineIdentity, GpuIcdTransformedFloatAmatrix) {
  OptimFlags flags;
  flags.quantize_amatrix = false;
  expectGpuBothWaysIdentical(flags);
}

TEST_F(SimdEngineIdentity, GpuIcdNaiveLayout) {
  OptimFlags flags;
  flags.transformed_layout = false;
  expectGpuBothWaysIdentical(flags);
}

TEST_F(SimdEngineIdentity, PsvIcdBothWaysIdentical) {
  auto run = [&](SimdMode mode, Image2D& x_out) {
    PsvIcdOptions opt;
    opt.sv.sv_side = 8;
    opt.num_threads = 1;
    opt.simd = mode;
    x_out = problem_->fbpInitialImage();
    Sinogram e = problem_->initialError(x_out);
    PsvIcd icd(problem_->view(), opt);
    return icd.run(x_out, e, [&](const PsvIterationInfo& info) {
      return info.equits < 3.0;
    });
  };
  Image2D xs, xv;
  const PsvRunStats ss = run(SimdMode::kOff, xs);
  const PsvRunStats sv = run(SimdMode::kAvx2, xv);
  test::expectImagesBitIdentical(xs, xv);
  EXPECT_EQ(ss.equits, sv.equits);
  EXPECT_EQ(ss.work.theta_elements, sv.work.theta_elements);
  EXPECT_EQ(ss.work.error_update_elements, sv.work.error_update_elements);
}

TEST_F(SimdEngineIdentity, ProjectorBothWaysIdenticalViaEnv) {
  const OwnedProblem& p = *problem_;
  Image2D x = p.fbpInitialImage();
  ScopedSimdEnv restore;
  ::setenv("GPUMBIR_SIMD", "off", 1);
  const Sinogram ys = forwardProject(p.matrix(), x);
  const Image2D bs = backProject(p.matrix(), ys);
  ::setenv("GPUMBIR_SIMD", "avx2", 1);
  const Sinogram yv = forwardProject(p.matrix(), x);
  const Image2D bv = backProject(p.matrix(), yv);
  ASSERT_EQ(ys.flat().size(), yv.flat().size());
  EXPECT_EQ(0, std::memcmp(ys.flat().data(), yv.flat().data(),
                           ys.flat().size() * sizeof(float)));
  test::expectImagesBitIdentical(bs, bv);
}

TEST_F(SimdEngineIdentity, ReconstructFacadeRecordsPathAndMatches) {
  const Image2D& golden = test::tinyGolden();
  RunConfig cfg = test::tinyRunConfig(Algorithm::kGpuIcd, 3.0);
  cfg.simd = SimdMode::kOff;
  const RunResult rs = reconstruct(*problem_, golden, cfg);
  cfg.simd = SimdMode::kAvx2;
  const RunResult rv = reconstruct(*problem_, golden, cfg);
  EXPECT_STREQ(rs.simd_path, "scalar");
  EXPECT_STREQ(rv.simd_path, "avx2");
  test::expectRunResultsBitIdentical(rs, rv);
}

}  // namespace
}  // namespace mbir
