// Observability subsystem tests: JSON writer/parser round-trips, metrics
// registry semantics (including thread-safety), trace recorder output, and
// schema validation of the artifacts a real instrumented reconstruction
// writes (Chrome trace + run report).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "core/error.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "recon/run_report.h"
#include "test_util.h"

using namespace mbir;
using namespace mbir::obs;

// ---------------------------------------------------------------- JSON

TEST(Json, WriterRoundTrip) {
  JsonWriter w;
  w.beginObject();
  w.kv("name", "gsim.launch");
  w.kv("count", std::uint64_t(42));
  w.kv("ratio", 0.25);
  w.kv("enabled", true);
  w.key("nested").beginObject().kv("x", -3).endObject();
  w.key("arr").beginArray().value(1).value(2.5).value("s").endArray();
  w.key("none").null();
  w.endObject();

  const JsonValue v = parseJson(w.str());
  ASSERT_TRUE(v.isObject());
  EXPECT_EQ(v.find("name")->asString(), "gsim.launch");
  EXPECT_EQ(v.find("count")->asNumber(), 42.0);
  EXPECT_EQ(v.find("ratio")->asNumber(), 0.25);
  EXPECT_TRUE(v.find("enabled")->asBool());
  EXPECT_EQ(v.find("nested")->find("x")->asNumber(), -3.0);
  const JsonValue& arr = *v.find("arr");
  ASSERT_TRUE(arr.isArray());
  ASSERT_EQ(arr.array_v.size(), 3u);
  EXPECT_EQ(arr.array_v[1].asNumber(), 2.5);
  EXPECT_EQ(arr.array_v[2].asString(), "s");
  EXPECT_TRUE(v.find("none")->isNull());
}

TEST(Json, EscapingRoundTrip) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01";
  JsonWriter w;
  w.beginObject().kv("s", nasty).endObject();
  EXPECT_EQ(parseJson(w.str()).find("s")->asString(), nasty);
}

TEST(Json, IntegralDoublesPrintAsIntegers) {
  EXPECT_EQ(JsonWriter::formatNumber(42.0), "42");
  EXPECT_EQ(JsonWriter::formatNumber(-7.0), "-7");
  EXPECT_NE(JsonWriter::formatNumber(0.5).find('.'), std::string::npos);
}

TEST(Json, NonFiniteWritesNull) {
  JsonWriter w;
  w.beginObject()
      .kv("inf", std::numeric_limits<double>::infinity())
      .kv("nan", std::nan(""))
      .endObject();
  const JsonValue v = parseJson(w.str());
  EXPECT_TRUE(v.find("inf")->isNull());
  EXPECT_TRUE(v.find("nan")->isNull());
}

TEST(Json, ParserRejectsMalformed) {
  EXPECT_THROW(parseJson("{"), Error);
  EXPECT_THROW(parseJson("{\"a\":1,}"), Error);
  EXPECT_THROW(parseJson("[1 2]"), Error);
  EXPECT_THROW(parseJson("{\"a\":1} trailing"), Error);
  EXPECT_THROW(parseJson("\"unterminated"), Error);
  EXPECT_THROW(parseJson(""), Error);
}

TEST(Json, ParserUnicodeEscape) {
  EXPECT_EQ(parseJson("\"\\u0041\\u00e9\"").asString(), "A\xc3\xa9");
}

// ------------------------------------------------------------- metrics

TEST(Metrics, CountersGaugesHistograms) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.b.count");
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  EXPECT_EQ(reg.counterValue("a.b.count"), 10u);
  EXPECT_EQ(reg.counterValue("never.registered"), 0u);
  // Same name returns the same instrument.
  EXPECT_EQ(&reg.counter("a.b.count"), &c);

  reg.gauge("a.g").set(1.5);
  EXPECT_EQ(reg.gauge("a.g").value(), 1.5);

  Histogram& h = reg.histogram("a.h");
  h.observe(1e-3);
  h.observe(2.0);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.sum, 2.001);
  EXPECT_DOUBLE_EQ(s.min, 1e-3);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
}

TEST(Metrics, NameKindCollisionThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), Error);
  EXPECT_THROW(reg.histogram("x"), Error);
}

TEST(Metrics, CountersAreThreadSafe) {
  MetricsRegistry reg;
  Counter& c = reg.counter("mt.count");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  for (auto& t : workers) t.join();
  EXPECT_EQ(c.value(), std::uint64_t(kThreads) * kAdds);
}

TEST(Metrics, WriteJsonParses) {
  MetricsRegistry reg;
  reg.counter("c.one").add(3);
  reg.gauge("g.one").set(0.5);
  reg.histogram("h.one").observe(2.0);
  JsonWriter w;
  reg.writeJson(w);
  const JsonValue v = parseJson(w.str());
  EXPECT_EQ(v.find("counters")->find("c.one")->asNumber(), 3.0);
  EXPECT_EQ(v.find("gauges")->find("g.one")->asNumber(), 0.5);
  const JsonValue& h = *v.find("histograms")->find("h.one");
  EXPECT_EQ(h.find("count")->asNumber(), 1.0);
  EXPECT_EQ(h.find("max")->asNumber(), 2.0);
}

// --------------------------------------------------------------- trace

TEST(Trace, RecorderEmitsBothClockTracks) {
  TraceRecorder tr;
  TraceEvent host;
  host.name = "span.host";
  host.cat = "test";
  host.clock = Clock::kHost;
  host.ts_us = 1.0;
  host.dur_us = 2.0;
  host.num_args = {{"k", 7.0}};
  host.str_args = {{"s", "v"}};
  tr.record(host);
  TraceEvent dev = host;
  dev.name = "span.modeled";
  dev.clock = Clock::kModeled;
  tr.record(dev);
  EXPECT_EQ(tr.size(), 2u);

  const JsonValue doc = parseJson(tr.toJson());
  EXPECT_EQ(doc.find("displayTimeUnit")->asString(), "ms");
  const JsonValue& evs = *doc.find("traceEvents");
  ASSERT_TRUE(evs.isArray());

  bool saw_host_meta = false, saw_modeled_meta = false;
  bool saw_host_span = false, saw_modeled_span = false;
  for (const JsonValue& e : evs.array_v) {
    const std::string ph = e.find("ph")->asString();
    const int pid = int(e.find("pid")->asNumber());
    if (ph == "M" && e.find("name")->asString() == "process_name") {
      if (pid == 1) saw_host_meta = true;
      if (pid == 2) saw_modeled_meta = true;
    }
    if (ph == "X" && e.find("name")->asString() == "span.host" && pid == 1) {
      saw_host_span = true;
      EXPECT_EQ(e.find("args")->find("k")->asNumber(), 7.0);
      EXPECT_EQ(e.find("args")->find("s")->asString(), "v");
      EXPECT_EQ(e.find("dur")->asNumber(), 2.0);
    }
    if (ph == "X" && e.find("name")->asString() == "span.modeled" && pid == 2)
      saw_modeled_span = true;
  }
  EXPECT_TRUE(saw_host_meta);
  EXPECT_TRUE(saw_modeled_meta);
  EXPECT_TRUE(saw_host_span);
  EXPECT_TRUE(saw_modeled_span);
}

TEST(Trace, HostSpanRecordsAndNullRecorderIsNoop) {
  ObsConfig cfg;
  cfg.trace = true;
  Recorder rec(cfg);
  {
    HostSpan span(&rec, "unit.span", "test");
    span.addArg("n", 1.0);
  }
  ASSERT_EQ(rec.trace().size(), 1u);
  const TraceEvent ev = rec.trace().snapshot()[0];
  EXPECT_EQ(ev.name, "unit.span");
  EXPECT_GE(ev.dur_us, 0.0);

  {
    HostSpan none(nullptr, "x", "y");
    none.addArg("n", 1.0);
  }  // must not crash or record anywhere
}

// ------------------------------------------- end-to-end schema validation

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

TEST(ObsSchema, InstrumentedReconstructionWritesValidArtifacts) {
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "/gpumbir_obs_trace.json";
  const std::string report_path = dir + "/gpumbir_obs_report.json";

  RunConfig cfg;
  cfg.algorithm = Algorithm::kGpuIcd;
  cfg.gpu.tunables.sv.sv_side = 8;
  cfg.max_equits = 6.0;
  cfg.obs.metrics = true;
  cfg.obs.trace = true;
  cfg.obs.trace_path = trace_path;
  cfg.obs.report_path = report_path;
  const RunResult r =
      reconstruct(test::tinyProblem(), test::tinyGolden(), cfg);
  ASSERT_TRUE(r.recorder);

  // ---- run report ----
  const JsonValue report = parseJson(slurp(report_path));
  EXPECT_EQ(report.find("schema")->asString(), "gpumbir.run_report/1");
  EXPECT_EQ(report.find("algorithm")->asString(), "GPU-ICD");
  EXPECT_GT(report.find("equits")->asNumber(), 0.0);
  EXPECT_GE(report.find("final_rmse_hu")->asNumber(), 0.0);
  EXPECT_GT(report.find("modeled_seconds")->asNumber(), 0.0);
  EXPECT_GE(report.find("host_seconds")->asNumber(), 0.0);

  const JsonValue& work = *report.find("work");
  for (const auto& [k, v] : work.object_v)
    EXPECT_GE(v.asNumber(), 0.0) << "work." << k;
  EXPECT_GT(work.find("voxel_updates")->asNumber(), 0.0);

  const JsonValue& curve = *report.find("curve");
  ASSERT_TRUE(curve.isArray());
  ASSERT_FALSE(curve.array_v.empty());
  for (const JsonValue& p : curve.array_v) {
    EXPECT_GE(p.find("equits")->asNumber(), 0.0);
    EXPECT_GE(p.find("modeled_seconds")->asNumber(), 0.0);
    EXPECT_GE(p.find("rmse_hu")->asNumber(), 0.0);
  }

  const JsonValue& gpu = *report.find("gpu");
  EXPECT_GT(gpu.find("kernels_launched")->asNumber(), 0.0);
  const JsonValue& cache = *gpu.find("chunk_cache");
  EXPECT_GE(cache.find("hits")->asNumber(), 0.0);
  EXPECT_GE(cache.find("misses")->asNumber(), 0.0);
  EXPECT_GT(gpu.find("per_kernel")->object_v.count("mbir_update"), 0u);

  const JsonValue& counters = *report.find("metrics")->find("counters");
  EXPECT_GE(counters.find("gpuicd.iteration.count")->asNumber(), 1.0);
  EXPECT_GE(counters.find("gsim.launch.count")->asNumber(), 1.0);
  EXPECT_GE(counters.find("recon.iteration.count")->asNumber(), 1.0);
  for (const auto& [k, v] : counters.object_v)
    EXPECT_GE(v.asNumber(), 0.0) << "counter " << k;

  EXPECT_GT(report.find("trace")->find("events")->asNumber(), 0.0);

  // ---- trace file ----
  const JsonValue trace = parseJson(slurp(trace_path));
  EXPECT_EQ(trace.find("displayTimeUnit")->asString(), "ms");
  const JsonValue& evs = *trace.find("traceEvents");
  ASSERT_TRUE(evs.isArray());
  bool meta_pid1 = false, meta_pid2 = false;
  bool recon_iter_pid1 = false, recon_iter_pid2 = false;
  bool gsim_launch_span = false, gpuicd_iter_span = false;
  for (const JsonValue& e : evs.array_v) {
    const std::string ph = e.find("ph")->asString();
    const std::string name = e.find("name")->asString();
    const int pid = int(e.find("pid")->asNumber());
    if (ph == "M") {
      if (name == "process_name" && pid == 1) meta_pid1 = true;
      if (name == "process_name" && pid == 2) meta_pid2 = true;
      continue;
    }
    ASSERT_EQ(ph, "X");
    EXPECT_GE(e.find("ts")->asNumber(), 0.0) << name;
    EXPECT_GE(e.find("dur")->asNumber(), 0.0) << name;
    if (name == "recon.iteration" && pid == 1) recon_iter_pid1 = true;
    if (name == "recon.iteration" && pid == 2) recon_iter_pid2 = true;
    if (name.rfind("gsim.launch.", 0) == 0) gsim_launch_span = true;
    if (name == "gpuicd.iteration") gpuicd_iter_span = true;
  }
  EXPECT_TRUE(meta_pid1);
  EXPECT_TRUE(meta_pid2);
  EXPECT_TRUE(recon_iter_pid1);
  EXPECT_TRUE(recon_iter_pid2);
  EXPECT_TRUE(gsim_launch_span);
  EXPECT_TRUE(gpuicd_iter_span);

  // The in-memory report serialization matches what was written.
  EXPECT_EQ(runReportJson(r, cfg) + "\n", slurp(report_path));

  std::remove(trace_path.c_str());
  std::remove(report_path.c_str());
}
