// Observability subsystem tests: JSON writer/parser round-trips, metrics
// registry semantics (including thread-safety), trace recorder output, and
// schema validation of the artifacts a real instrumented reconstruction
// writes (Chrome trace + run report).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "core/error.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "recon/run_report.h"
#include "test_util.h"

using namespace mbir;
using namespace mbir::obs;

// ---------------------------------------------------------------- JSON

TEST(Json, WriterRoundTrip) {
  JsonWriter w;
  w.beginObject();
  w.kv("name", "gsim.launch");
  w.kv("count", std::uint64_t(42));
  w.kv("ratio", 0.25);
  w.kv("enabled", true);
  w.key("nested").beginObject().kv("x", -3).endObject();
  w.key("arr").beginArray().value(1).value(2.5).value("s").endArray();
  w.key("none").null();
  w.endObject();

  const JsonValue v = parseJson(w.str());
  ASSERT_TRUE(v.isObject());
  EXPECT_EQ(v.find("name")->asString(), "gsim.launch");
  EXPECT_EQ(v.find("count")->asNumber(), 42.0);
  EXPECT_EQ(v.find("ratio")->asNumber(), 0.25);
  EXPECT_TRUE(v.find("enabled")->asBool());
  EXPECT_EQ(v.find("nested")->find("x")->asNumber(), -3.0);
  const JsonValue& arr = *v.find("arr");
  ASSERT_TRUE(arr.isArray());
  ASSERT_EQ(arr.array_v.size(), 3u);
  EXPECT_EQ(arr.array_v[1].asNumber(), 2.5);
  EXPECT_EQ(arr.array_v[2].asString(), "s");
  EXPECT_TRUE(v.find("none")->isNull());
}

TEST(Json, EscapingRoundTrip) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01";
  JsonWriter w;
  w.beginObject().kv("s", nasty).endObject();
  EXPECT_EQ(parseJson(w.str()).find("s")->asString(), nasty);
}

TEST(Json, IntegralDoublesPrintAsIntegers) {
  EXPECT_EQ(JsonWriter::formatNumber(42.0), "42");
  EXPECT_EQ(JsonWriter::formatNumber(-7.0), "-7");
  EXPECT_NE(JsonWriter::formatNumber(0.5).find('.'), std::string::npos);
}

TEST(Json, NonFiniteWritesNull) {
  JsonWriter w;
  w.beginObject()
      .kv("inf", std::numeric_limits<double>::infinity())
      .kv("nan", std::nan(""))
      .endObject();
  const JsonValue v = parseJson(w.str());
  EXPECT_TRUE(v.find("inf")->isNull());
  EXPECT_TRUE(v.find("nan")->isNull());
}

TEST(Json, ParserRejectsMalformed) {
  EXPECT_THROW(parseJson("{"), Error);
  EXPECT_THROW(parseJson("{\"a\":1,}"), Error);
  EXPECT_THROW(parseJson("[1 2]"), Error);
  EXPECT_THROW(parseJson("{\"a\":1} trailing"), Error);
  EXPECT_THROW(parseJson("\"unterminated"), Error);
  EXPECT_THROW(parseJson(""), Error);
}

TEST(Json, ParserUnicodeEscape) {
  EXPECT_EQ(parseJson("\"\\u0041\\u00e9\"").asString(), "A\xc3\xa9");
}

// ------------------------------------------------------------- metrics

TEST(Metrics, CountersGaugesHistograms) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.b.count");
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  EXPECT_EQ(reg.counterValue("a.b.count"), 10u);
  EXPECT_EQ(reg.counterValue("never.registered"), 0u);
  // Same name returns the same instrument.
  EXPECT_EQ(&reg.counter("a.b.count"), &c);

  reg.gauge("a.g").set(1.5);
  EXPECT_EQ(reg.gauge("a.g").value(), 1.5);

  Histogram& h = reg.histogram("a.h");
  h.observe(1e-3);
  h.observe(2.0);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.sum, 2.001);
  EXPECT_DOUBLE_EQ(s.min, 1e-3);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
}

TEST(Metrics, NameKindCollisionThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), Error);
  EXPECT_THROW(reg.histogram("x"), Error);
}

TEST(Metrics, CountersAreThreadSafe) {
  MetricsRegistry reg;
  Counter& c = reg.counter("mt.count");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  for (auto& t : workers) t.join();
  EXPECT_EQ(c.value(), std::uint64_t(kThreads) * kAdds);
}

TEST(Metrics, WriteJsonParses) {
  MetricsRegistry reg;
  reg.counter("c.one").add(3);
  reg.gauge("g.one").set(0.5);
  reg.histogram("h.one").observe(2.0);
  JsonWriter w;
  reg.writeJson(w);
  const JsonValue v = parseJson(w.str());
  EXPECT_EQ(v.find("counters")->find("c.one")->asNumber(), 3.0);
  EXPECT_EQ(v.find("gauges")->find("g.one")->asNumber(), 0.5);
  const JsonValue& h = *v.find("histograms")->find("h.one");
  EXPECT_EQ(h.find("count")->asNumber(), 1.0);
  EXPECT_EQ(h.find("max")->asNumber(), 2.0);
}

TEST(Metrics, LabeledNamesAreCanonical) {
  // Keys sort, so label order at the call site never splits an instrument.
  EXPECT_EQ(labeledName("svc.jobs", {{"tenant", "acme"}, {"device", "2"}}),
            "svc.jobs{device=2,tenant=acme}");
  EXPECT_EQ(labeledName("svc.jobs", {}), "svc.jobs");
  EXPECT_THROW(labeledName("x", {{"bad,key", "v"}}), Error);
  EXPECT_THROW(labeledName("x", {{"k", "bad=value"}}), Error);
  EXPECT_THROW(labeledName("x", {{"k", "bad{value"}}), Error);

  MetricsRegistry reg;
  Counter& a = reg.counter("svc.jobs", {{"tenant", "acme"}, {"device", "2"}});
  Counter& b = reg.counter("svc.jobs", {{"device", "2"}, {"tenant", "acme"}});
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.counterValue("svc.jobs{device=2,tenant=acme}"), 3u);
  // Different label values are different series.
  reg.counter("svc.jobs", {{"device", "3"}, {"tenant", "acme"}}).add();
  EXPECT_EQ(reg.counterValue("svc.jobs{device=3,tenant=acme}"), 1u);
}

TEST(Metrics, ReadAccessorsNeverRegister) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counterValue("nope"), 0u);
  EXPECT_EQ(reg.gaugeValue("nope"), 0.0);
  EXPECT_EQ(reg.histogramSnapshot("nope").count, 0u);
  // The misses above must not have created instruments: the JSON dump of an
  // untouched registry is empty.
  JsonWriter w;
  reg.writeJson(w);
  const JsonValue v = parseJson(w.str());
  EXPECT_TRUE(v.find("counters")->object_v.empty());
  EXPECT_TRUE(v.find("gauges")->object_v.empty());
  EXPECT_TRUE(v.find("histograms")->object_v.empty());

  reg.gauge("g").set(2.5);
  EXPECT_EQ(reg.gaugeValue("g"), 2.5);
}

namespace {

/// Index of the bucket an observation of `v` must land in (the first bound
/// >= v), mirroring Histogram::observe's lower_bound on inclusive bounds.
int expectedBucket(double v) {
  for (int i = 0; i < Histogram::kBuckets - 1; ++i)
    if (v <= Histogram::bucketUpperBound(i)) return i;
  return Histogram::kBuckets - 1;  // overflow
}

}  // namespace

TEST(Metrics, HistogramBucketBoundsAreInclusiveLogLinear) {
  // The 1-2-5 ladder: bound values land in their own bucket (inclusive
  // upper bounds); one ulp above spills into the next.
  for (double bound : {1e-3, 2e-3, 5e-3, 1.0, 2.0, 5.0, 1e3}) {
    Histogram h;
    h.observe(bound);
    const Histogram::Snapshot s = h.snapshot();
    const int i = expectedBucket(bound);
    EXPECT_EQ(s.buckets[std::size_t(i)], 1u) << bound;
    EXPECT_DOUBLE_EQ(Histogram::bucketUpperBound(i), bound) << bound;

    Histogram h2;
    const double above = std::nextafter(bound, 1e300);
    h2.observe(above);
    EXPECT_EQ(h2.snapshot().buckets[std::size_t(i)], 0u) << bound;
    EXPECT_EQ(h2.snapshot().buckets[std::size_t(expectedBucket(above))], 1u)
        << bound;
  }
}

TEST(Metrics, HistogramEdgeObservationsGoSomewhereSane) {
  Histogram h;
  h.observe(0.0);                // below the smallest bound -> bucket 0
  h.observe(-1.0);               // negative -> bucket 0 (min still tracks it)
  h.observe(1e300);              // beyond the top bound -> overflow
  h.observe(std::nan(""));       // NaN -> overflow, never lost
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[Histogram::kBuckets - 1], 2u);
  EXPECT_EQ(s.min, -1.0);
  // The top finite bound is exactly 10^kMaxExponent; the overflow bucket's
  // bound is +inf.
  EXPECT_DOUBLE_EQ(Histogram::bucketUpperBound(Histogram::kBuckets - 2),
                   std::pow(10.0, Histogram::kMaxExponent));
  EXPECT_TRUE(std::isinf(Histogram::bucketUpperBound(Histogram::kBuckets - 1)));
}

TEST(Metrics, HistogramQuantiles) {
  EXPECT_EQ(Histogram().snapshot().quantile(0.5), 0.0);  // empty -> 0

  Histogram one;
  one.observe(0.42);
  // A single observation is every quantile (clamped to [min, max]).
  EXPECT_DOUBLE_EQ(one.snapshot().quantile(0.0), 0.42);
  EXPECT_DOUBLE_EQ(one.snapshot().quantile(0.5), 0.42);
  EXPECT_DOUBLE_EQ(one.snapshot().quantile(1.0), 0.42);

  // 100 observations of 1..100 ms: quantile estimates must stay within the
  // covering bucket of the exact order statistic.
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.observe(i * 1e-3);
  const Histogram::Snapshot s = h.snapshot();
  const double p50 = s.quantile(0.50);
  const double p95 = s.quantile(0.95);
  const double p99 = s.quantile(0.99);
  EXPECT_GE(p50, 0.02);   // exact p50 = 0.050, bucket (0.02, 0.05]
  EXPECT_LE(p50, 0.05);
  EXPECT_GE(p95, 0.05);   // exact p95 = 0.095, bucket (0.05, 0.1]
  EXPECT_LE(p95, 0.1);
  EXPECT_GE(p99, 0.05);   // exact p99 = 0.099, same bucket
  EXPECT_LE(p99, 0.1);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Estimates never leave the observed range.
  EXPECT_GE(s.quantile(0.0), s.min);
  EXPECT_LE(s.quantile(1.0), s.max);
}

TEST(Metrics, HistogramJsonIsVersionedWithQuantilesAndSparseBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("svc.lat");
  h.observe(1e300);  // one overflow observation: its bound serializes null
  for (int i = 0; i < 9; ++i) h.observe(0.004);
  JsonWriter w;
  reg.writeJson(w);
  const JsonValue v = parseJson(w.str());
  const JsonValue& hj = *v.find("histograms")->find("svc.lat");
  EXPECT_EQ(hj.find("v")->asNumber(), double(Histogram::kSchemaVersion));
  EXPECT_EQ(hj.find("count")->asNumber(), 10.0);
  EXPECT_GT(hj.find("p50")->asNumber(), 0.0);
  EXPECT_GE(hj.find("p99")->asNumber(), hj.find("p95")->asNumber());
  const JsonValue& buckets = *hj.find("buckets");
  ASSERT_TRUE(buckets.isArray());
  ASSERT_EQ(buckets.array_v.size(), 2u);  // sparse: only non-zero buckets
  EXPECT_DOUBLE_EQ(buckets.array_v[0].array_v[0].asNumber(), 0.005);
  EXPECT_EQ(buckets.array_v[0].array_v[1].asNumber(), 9.0);
  EXPECT_TRUE(buckets.array_v[1].array_v[0].isNull());  // overflow bound
  EXPECT_EQ(buckets.array_v[1].array_v[1].asNumber(), 1.0);
}

// -------------------------------------------------------------- flight

TEST(Flight, RingOverwritesOldestAndDumpsOldestFirst) {
  FlightRecorder fr(/*num_devices=*/2, /*capacity_per_lane=*/3);
  for (int i = 0; i < 5; ++i) {
    FlightEvent ev;
    ev.job_id = i;
    ev.kind = "iteration";
    ev.value = double(i);
    fr.record(FlightRecorder::deviceLane(1), std::move(ev));
  }
  FlightEvent admit;
  admit.job_id = 7;
  admit.kind = "admit";
  fr.record(FlightRecorder::kControlLane, std::move(admit));
  FlightEvent stray;
  stray.kind = "stray";
  fr.record(/*lane=*/99, std::move(stray));  // out of range -> control lane

  EXPECT_EQ(fr.size(), 5u);           // 3 (wrapped) + 2 control
  EXPECT_EQ(fr.totalRecorded(), 7u);  // overwritten events still count

  const JsonValue doc = parseJson(fr.dumpJson("unit test"));
  EXPECT_EQ(doc.find("schema")->asString(), "gpumbir.flight/1");
  EXPECT_EQ(doc.find("reason")->asString(), "unit test");
  const JsonValue& lanes = *doc.find("lanes");
  ASSERT_EQ(lanes.array_v.size(), 3u);  // control + 2 devices

  const JsonValue& control = lanes.array_v[0];
  EXPECT_EQ(control.find("device")->asNumber(), -1.0);
  ASSERT_EQ(control.find("events")->array_v.size(), 2u);
  EXPECT_EQ(control.find("events")->array_v[1].find("kind")->asString(),
            "stray");

  // Device 1's ring wrapped: jobs 0 and 1 were overwritten, and the dump
  // is oldest-first with monotone timestamps.
  const JsonValue& lane = lanes.array_v[2];
  EXPECT_EQ(lane.find("device")->asNumber(), 1.0);
  EXPECT_EQ(lane.find("events_total")->asNumber(), 5.0);
  const auto& events = lane.find("events")->array_v;
  ASSERT_EQ(events.size(), 3u);
  double prev_us = -1.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].find("job_id")->asNumber(), double(i + 2));
    const double us = events[i].find("host_us")->asNumber();
    EXPECT_GE(us, prev_us);
    prev_us = us;
  }
}

// --------------------------------------------------------------- trace

TEST(Trace, RecorderEmitsBothClockTracks) {
  TraceRecorder tr;
  TraceEvent host;
  host.name = "span.host";
  host.cat = "test";
  host.clock = Clock::kHost;
  host.ts_us = 1.0;
  host.dur_us = 2.0;
  host.num_args = {{"k", 7.0}};
  host.str_args = {{"s", "v"}};
  tr.record(host);
  TraceEvent dev = host;
  dev.name = "span.modeled";
  dev.clock = Clock::kModeled;
  tr.record(dev);
  EXPECT_EQ(tr.size(), 2u);

  const JsonValue doc = parseJson(tr.toJson());
  EXPECT_EQ(doc.find("displayTimeUnit")->asString(), "ms");
  const JsonValue& evs = *doc.find("traceEvents");
  ASSERT_TRUE(evs.isArray());

  bool saw_host_meta = false, saw_modeled_meta = false;
  bool saw_host_span = false, saw_modeled_span = false;
  for (const JsonValue& e : evs.array_v) {
    const std::string ph = e.find("ph")->asString();
    const int pid = int(e.find("pid")->asNumber());
    if (ph == "M" && e.find("name")->asString() == "process_name") {
      if (pid == 1) saw_host_meta = true;
      if (pid == 2) saw_modeled_meta = true;
    }
    if (ph == "X" && e.find("name")->asString() == "span.host" && pid == 1) {
      saw_host_span = true;
      EXPECT_EQ(e.find("args")->find("k")->asNumber(), 7.0);
      EXPECT_EQ(e.find("args")->find("s")->asString(), "v");
      EXPECT_EQ(e.find("dur")->asNumber(), 2.0);
    }
    if (ph == "X" && e.find("name")->asString() == "span.modeled" && pid == 2)
      saw_modeled_span = true;
  }
  EXPECT_TRUE(saw_host_meta);
  EXPECT_TRUE(saw_modeled_meta);
  EXPECT_TRUE(saw_host_span);
  EXPECT_TRUE(saw_modeled_span);
}

TEST(Trace, NamedThreadsEmitMetadataRecords) {
  TraceRecorder tr;
  tr.nameThread(int(Clock::kHost), 0, "svc control", 0);
  tr.nameThread(int(Clock::kHost), 2, "svc device 1 (host)", 2);
  TraceEvent ev;
  ev.name = "x";
  ev.cat = "test";
  ev.clock = Clock::kHost;
  ev.tid = 2;
  tr.record(ev);

  const JsonValue doc = parseJson(tr.toJson());
  bool named_control = false, named_device = false, sorted_device = false;
  for (const JsonValue& e : doc.find("traceEvents")->array_v) {
    if (e.find("ph")->asString() != "M") continue;
    const std::string name = e.find("name")->asString();
    const int pid = int(e.find("pid")->asNumber());
    const int tid = int(e.find("tid") ? e.find("tid")->asNumber() : -1);
    if (name == "thread_name" && pid == 1 && tid == 0 &&
        e.find("args")->find("name")->asString() == "svc control")
      named_control = true;
    if (name == "thread_name" && pid == 1 && tid == 2 &&
        e.find("args")->find("name")->asString() == "svc device 1 (host)")
      named_device = true;
    if (name == "thread_sort_index" && pid == 1 && tid == 2 &&
        e.find("args")->find("sort_index")->asNumber() == 2.0)
      sorted_device = true;
  }
  EXPECT_TRUE(named_control);
  EXPECT_TRUE(named_device);
  EXPECT_TRUE(sorted_device);
}

TEST(Trace, HostSpanRecordsAndNullRecorderIsNoop) {
  ObsConfig cfg;
  cfg.trace = true;
  Recorder rec(cfg);
  {
    HostSpan span(&rec, "unit.span", "test");
    span.addArg("n", 1.0);
  }
  ASSERT_EQ(rec.trace().size(), 1u);
  const TraceEvent ev = rec.trace().snapshot()[0];
  EXPECT_EQ(ev.name, "unit.span");
  EXPECT_GE(ev.dur_us, 0.0);

  {
    HostSpan none(nullptr, "x", "y");
    none.addArg("n", 1.0);
  }  // must not crash or record anywhere
}

// ------------------------------------------- end-to-end schema validation

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

TEST(ObsSchema, InstrumentedReconstructionWritesValidArtifacts) {
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "/gpumbir_obs_trace.json";
  const std::string report_path = dir + "/gpumbir_obs_report.json";

  RunConfig cfg;
  cfg.algorithm = Algorithm::kGpuIcd;
  cfg.gpu.tunables.sv.sv_side = 8;
  cfg.max_equits = 6.0;
  cfg.obs.metrics = true;
  cfg.obs.trace = true;
  cfg.obs.trace_path = trace_path;
  cfg.obs.report_path = report_path;
  const RunResult r =
      reconstruct(test::tinyProblem(), test::tinyGolden(), cfg);
  ASSERT_TRUE(r.recorder);

  // ---- run report ----
  const JsonValue report = parseJson(slurp(report_path));
  EXPECT_EQ(report.find("schema")->asString(), "gpumbir.run_report/1");
  EXPECT_EQ(report.find("algorithm")->asString(), "GPU-ICD");
  EXPECT_GT(report.find("equits")->asNumber(), 0.0);
  EXPECT_GE(report.find("final_rmse_hu")->asNumber(), 0.0);
  EXPECT_GT(report.find("modeled_seconds")->asNumber(), 0.0);
  EXPECT_GE(report.find("host_seconds")->asNumber(), 0.0);

  const JsonValue& work = *report.find("work");
  for (const auto& [k, v] : work.object_v)
    EXPECT_GE(v.asNumber(), 0.0) << "work." << k;
  EXPECT_GT(work.find("voxel_updates")->asNumber(), 0.0);

  const JsonValue& curve = *report.find("curve");
  ASSERT_TRUE(curve.isArray());
  ASSERT_FALSE(curve.array_v.empty());
  for (const JsonValue& p : curve.array_v) {
    EXPECT_GE(p.find("equits")->asNumber(), 0.0);
    EXPECT_GE(p.find("modeled_seconds")->asNumber(), 0.0);
    EXPECT_GE(p.find("rmse_hu")->asNumber(), 0.0);
  }

  const JsonValue& gpu = *report.find("gpu");
  EXPECT_GT(gpu.find("kernels_launched")->asNumber(), 0.0);
  const JsonValue& cache = *gpu.find("chunk_cache");
  EXPECT_GE(cache.find("hits")->asNumber(), 0.0);
  EXPECT_GE(cache.find("misses")->asNumber(), 0.0);
  EXPECT_GT(gpu.find("per_kernel")->object_v.count("mbir_update"), 0u);

  const JsonValue& counters = *report.find("metrics")->find("counters");
  EXPECT_GE(counters.find("gpuicd.iteration.count")->asNumber(), 1.0);
  EXPECT_GE(counters.find("gsim.launch.count")->asNumber(), 1.0);
  EXPECT_GE(counters.find("recon.iteration.count")->asNumber(), 1.0);
  for (const auto& [k, v] : counters.object_v)
    EXPECT_GE(v.asNumber(), 0.0) << "counter " << k;

  EXPECT_GT(report.find("trace")->find("events")->asNumber(), 0.0);

  // ---- trace file ----
  const JsonValue trace = parseJson(slurp(trace_path));
  EXPECT_EQ(trace.find("displayTimeUnit")->asString(), "ms");
  const JsonValue& evs = *trace.find("traceEvents");
  ASSERT_TRUE(evs.isArray());
  bool meta_pid1 = false, meta_pid2 = false;
  bool recon_iter_pid1 = false, recon_iter_pid2 = false;
  bool gsim_launch_span = false, gpuicd_iter_span = false;
  for (const JsonValue& e : evs.array_v) {
    const std::string ph = e.find("ph")->asString();
    const std::string name = e.find("name")->asString();
    const int pid = int(e.find("pid")->asNumber());
    if (ph == "M") {
      if (name == "process_name" && pid == 1) meta_pid1 = true;
      if (name == "process_name" && pid == 2) meta_pid2 = true;
      continue;
    }
    ASSERT_EQ(ph, "X");
    EXPECT_GE(e.find("ts")->asNumber(), 0.0) << name;
    EXPECT_GE(e.find("dur")->asNumber(), 0.0) << name;
    if (name == "recon.iteration" && pid == 1) recon_iter_pid1 = true;
    if (name == "recon.iteration" && pid == 2) recon_iter_pid2 = true;
    if (name.rfind("gsim.launch.", 0) == 0) gsim_launch_span = true;
    if (name == "gpuicd.iteration") gpuicd_iter_span = true;
  }
  EXPECT_TRUE(meta_pid1);
  EXPECT_TRUE(meta_pid2);
  EXPECT_TRUE(recon_iter_pid1);
  EXPECT_TRUE(recon_iter_pid2);
  EXPECT_TRUE(gsim_launch_span);
  EXPECT_TRUE(gpuicd_iter_span);

  // The in-memory report serialization matches what was written.
  EXPECT_EQ(runReportJson(r, cfg) + "\n", slurp(report_path));

  std::remove(trace_path.c_str());
  std::remove(report_path.c_str());
}
