// Fuzz/property tests for the obs JSON writer + strict parser.
//
// Round-trip property: any document emitted by JsonWriter from a randomized
// (seeded Rng, no wall-clock) value tree parses back to the same tree.
// Robustness property: a corpus of malformed inputs — truncations, bad
// escapes, duplicate keys, unterminated containers, deep nesting, raw
// control bytes — must be *rejected* with mbir::Error, never crash, and
// never be silently accepted.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "chaos/fault.h"
#include "core/error.h"
#include "core/rng.h"
#include "obs/json.h"

namespace mbir::obs {
namespace {

// ---------- randomized round-trip ----------

// Random value tree, bounded in depth and fanout so documents stay small.
JsonValue randomValue(Rng& rng, int depth) {
  JsonValue v;
  // Leaves only at the depth limit; containers get rarer as we go deeper.
  const std::uint64_t kind = rng.below(depth >= 4 ? 4 : 6);
  switch (kind) {
    case 0:
      v.type = JsonValue::Type::kNull;
      break;
    case 1:
      v.type = JsonValue::Type::kBool;
      v.bool_v = rng.below(2) == 1;
      break;
    case 2: {
      v.type = JsonValue::Type::kNumber;
      // Mix of integers and reals, positive and negative, wide magnitude.
      const double mag = rng.uniform(-9, 9);
      double x = rng.uniform(-1.0, 1.0) * std::pow(10.0, mag);
      if (rng.below(2) == 0) x = double(std::int64_t(x * 1000.0));
      v.num_v = x;
      break;
    }
    case 3: {
      v.type = JsonValue::Type::kString;
      const std::uint64_t len = rng.below(12);
      for (std::uint64_t i = 0; i < len; ++i) {
        // Printable ASCII plus the characters that need escaping.
        const char* alphabet =
            "abcXYZ012 _-/\\\"\n\t\r{}[]:,\x01\x1f";
        v.str_v.push_back(alphabet[rng.below(27)]);
      }
      break;
    }
    case 4: {
      v.type = JsonValue::Type::kArray;
      const std::uint64_t n = rng.below(5);
      for (std::uint64_t i = 0; i < n; ++i)
        v.array_v.push_back(randomValue(rng, depth + 1));
      break;
    }
    default: {
      v.type = JsonValue::Type::kObject;
      const std::uint64_t n = rng.below(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string key = "k" + std::to_string(rng.below(1000));
        v.object_v[key] = randomValue(rng, depth + 1);  // dup keys collapse
      }
      break;
    }
  }
  return v;
}

void writeValue(JsonWriter& w, const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kNull: w.null(); break;
    case JsonValue::Type::kBool: w.value(v.bool_v); break;
    case JsonValue::Type::kNumber: w.value(v.num_v); break;
    case JsonValue::Type::kString: w.value(v.str_v); break;
    case JsonValue::Type::kArray:
      w.beginArray();
      for (const JsonValue& e : v.array_v) writeValue(w, e);
      w.endArray();
      break;
    case JsonValue::Type::kObject:
      w.beginObject();
      for (const auto& [k, e] : v.object_v) {
        w.key(k);
        writeValue(w, e);
      }
      w.endObject();
      break;
  }
}

void expectSameTree(const JsonValue& a, const JsonValue& b,
                    const std::string& path) {
  ASSERT_EQ(int(a.type), int(b.type)) << path;
  switch (a.type) {
    case JsonValue::Type::kNull: break;
    case JsonValue::Type::kBool: EXPECT_EQ(a.bool_v, b.bool_v) << path; break;
    case JsonValue::Type::kNumber:
      // formatNumber emits full round-trip precision for finite values.
      EXPECT_EQ(a.num_v, b.num_v) << path;
      break;
    case JsonValue::Type::kString: EXPECT_EQ(a.str_v, b.str_v) << path; break;
    case JsonValue::Type::kArray:
      ASSERT_EQ(a.array_v.size(), b.array_v.size()) << path;
      for (std::size_t i = 0; i < a.array_v.size(); ++i)
        expectSameTree(a.array_v[i], b.array_v[i],
                       path + "[" + std::to_string(i) + "]");
      break;
    case JsonValue::Type::kObject:
      ASSERT_EQ(a.object_v.size(), b.object_v.size()) << path;
      for (const auto& [k, e] : a.object_v) {
        auto it = b.object_v.find(k);
        ASSERT_NE(it, b.object_v.end()) << path << "." << k;
        expectSameTree(e, it->second, path + "." + k);
      }
      break;
  }
}

TEST(JsonFuzz, RandomDocumentsRoundTrip) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng = Rng::forStream(0x15f2, seed);
    JsonValue doc = randomValue(rng, 0);
    JsonWriter w;
    writeValue(w, doc);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + w.str());
    JsonValue parsed;
    ASSERT_NO_THROW(parsed = parseJson(w.str()));
    expectSameTree(doc, parsed, "$");
  }
}

TEST(JsonFuzz, EveryTruncationOfValidDocumentIsRejected) {
  Rng rng = Rng::forStream(0xdead, 7);
  JsonWriter w;
  // Force a container root so every proper prefix is incomplete.
  JsonValue doc;
  doc.type = JsonValue::Type::kObject;
  doc.object_v["a"] = randomValue(rng, 1);
  doc.object_v["b"] = randomValue(rng, 1);
  doc.object_v["long_key_so_prefixes_cut_strings"] = randomValue(rng, 1);
  writeValue(w, doc);
  const std::string& full = w.str();
  ASSERT_NO_THROW(parseJson(full));
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::string prefix = full.substr(0, cut);
    EXPECT_THROW(parseJson(prefix), Error) << "prefix length " << cut;
  }
}

TEST(JsonFuzz, RandomMutationsNeverCrash) {
  // Flip, insert, or delete random bytes in a valid document: the parser
  // must either accept (mutation kept it valid) or throw Error — any other
  // exception or a crash fails the test.
  Rng gen = Rng::forStream(0xbeef, 1);
  JsonWriter w;
  writeValue(w, randomValue(gen, 0));
  const std::string base =
      w.str().empty() ? "{\"k\":[1,2,{\"x\":null}]}" : w.str();
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    Rng rng = Rng::forStream(0xf00d, seed);
    std::string s = "{\"k\":[1,2,{\"x\":null}],\"m\":\"abc\"}";
    const std::uint64_t edits = 1 + rng.below(4);
    for (std::uint64_t e = 0; e < edits; ++e) {
      if (s.empty()) break;
      const std::uint64_t pos = rng.below(s.size());
      switch (rng.below(3)) {
        case 0: s[pos] = char(rng.below(256)); break;
        case 1: s.insert(pos, 1, char(rng.below(128))); break;
        default: s.erase(pos, 1); break;
      }
    }
    try {
      parseJson(s);
    } catch (const Error&) {
      // rejected: fine
    }
    (void)base;
  }
}

// ---------- malformed corpus ----------

TEST(JsonStrict, RejectsMalformedCorpus) {
  const char* corpus[] = {
      "",                      // empty
      "   ",                   // whitespace only
      "{",                     // unterminated object
      "[1, 2",                 // unterminated array
      "\"abc",                 // unterminated string
      "{\"a\" 1}",             // missing colon
      "{\"a\":1,}",            // trailing comma
      "[1,,2]",                // empty element
      "[1] 2",                 // trailing garbage
      "{} {}",                 // two documents
      "nul",                   // truncated keyword
      "tru",                   //
      "+1",                    // leading plus
      "01",                    // leading zero
      "1.",                    // bare trailing dot
      ".5",                    // bare leading dot
      "1e",                    // empty exponent
      "'a'",                   // single quotes
      "{a:1}",                 // unquoted key
      "\"\\x41\"",             // invalid escape
      "\"\\u12\"",             // short unicode escape
      "\"\\u12zz\"",           // non-hex unicode escape
      "\"\\\"",                // escape then EOF
      "{\"a\":1,\"a\":2}",     // duplicate key
      "{\"a\":{\"b\":1,\"b\":2}}",  // nested duplicate key
      "\"a\nb\"",              // raw newline in string
      "\"a\tb\"",              // raw tab in string
      "[1 2]",                 // missing comma
      "{\"a\":}",              // missing value
      "-",                     // lone minus
      "[}",                    // mismatched close
      "{]",                    //
      "1e999",                 // overflows to inf
      "-1e999",                // overflows to -inf
      "1e100000",              // huge exponent
      "[1, 1e999]",            // overflow nested in a valid container
      "\"\\ud800\"",           // lone high surrogate
      "\"\\udc00\"",           // lone low surrogate
      "\"\\ud800x\"",          // high surrogate then raw char
      "\"\\ud800\\u0041\"",    // high surrogate then non-surrogate escape
      "\"\\ud800\\ud800\"",    // high surrogate pair (no low)
      "\"\\ud83d\"",           // truncated emoji pair
  };
  for (const char* bad : corpus) {
    EXPECT_THROW(parseJson(bad), Error) << "input: " << bad;
  }
}

TEST(JsonStrict, RejectsRawControlByteInString) {
  std::string s = "\"ab\"";
  s[2] = '\x01';
  EXPECT_THROW(parseJson(s), Error);
}

TEST(JsonStrict, DeepNestingIsRejectedNotStackOverflow) {
  // Well beyond the 200-level cap: must throw, not smash the stack.
  const int depth = 100000;
  std::string arrays(std::size_t(depth), '[');
  EXPECT_THROW(parseJson(arrays), Error);
  std::string closed = arrays + std::string(std::size_t(depth), ']');
  EXPECT_THROW(parseJson(closed), Error);
  std::string objects;
  for (int i = 0; i < 300; ++i) objects += "{\"k\":";
  objects += "1";
  for (int i = 0; i < 300; ++i) objects += "}";
  EXPECT_THROW(parseJson(objects), Error);
}

TEST(JsonStrict, NestingJustUnderTheCapParses) {
  std::string s(199, '[');
  s += "1";
  s += std::string(199, ']');
  EXPECT_NO_THROW(parseJson(s));
}

TEST(JsonStrict, AcceptsEscapesAndUnicode) {
  const JsonValue v = parseJson("\"a\\n\\t\\\\\\\"\\u0041\"");
  EXPECT_EQ(v.asString(), "a\n\t\\\"A");
}

TEST(JsonStrict, SurrogatePairsDecodeToUtf8) {
  // U+1F600 (emoji) and U+1D11E (musical symbol): 4-byte UTF-8, not CESU-8.
  EXPECT_EQ(parseJson("\"\\ud83d\\ude00\"").asString(), "\xF0\x9F\x98\x80");
  EXPECT_EQ(parseJson("\"\\ud834\\udd1e\"").asString(), "\xF0\x9D\x84\x9E");
  // BMP escapes are unaffected.
  EXPECT_EQ(parseJson("\"\\u20ac\"").asString(), "\xE2\x82\xAC");
}

TEST(JsonStrict, HugeButFiniteNumbersParse) {
  EXPECT_NO_THROW(parseJson("1e308"));
  EXPECT_NO_THROW(parseJson("-1.7976931348623157e308"));
  EXPECT_NO_THROW(parseJson("1e-400"));  // underflow to 0/denormal is finite
}

// ---------- fault-plan document robustness ----------

TEST(JsonFaultPlan, MalformedPlanDocumentsAreRejectedNotCrashes) {
  // The chaos verb parses operator-supplied plan documents off the wire;
  // structurally wrong but well-formed JSON must throw mbir::Error cleanly.
  const char* corpus[] = {
      "[]",                                  // not an object
      "3",                                   //
      "\"plan\"",                            //
      "null",                                //
      R"({"seed":"abc"})",                   // seed not a number
      R"({"launch_fault_rate":true})",       // rate not a number
      R"({"launch_fault_rate":2.0})",        // rate out of [0,1]
      R"({"stall_rate":-0.5})",              //
      R"({"death_rate":1e9})",               //
      R"({"launch_fault_rate":0.6,"stall_rate":0.6})",  // rates sum > 1
      R"({"target_devices":3})",             // devices not an array
      R"({"target_devices":{"a":1}})",       //
      R"({"target_devices":["x"]})",         // device not a number
  };
  for (const char* bad : corpus) {
    SCOPED_TRACE(bad);
    EXPECT_THROW(mbir::chaos::FaultPlan::fromJson(parseJson(bad)),
                 mbir::Error);
  }
}

TEST(JsonFaultPlan, RandomValidPlansRoundTripThroughJson) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    mbir::Rng rng = mbir::Rng::forStream(0x71A9, seed);
    mbir::chaos::FaultPlan p;
    p.seed = rng.below(1u << 30);
    // Three rates that always sum to <= 1.
    p.launch_fault_rate = rng.uniform() / 3.0;
    p.stall_rate = rng.uniform() / 3.0;
    p.death_rate = rng.uniform() / 3.0;
    const std::uint64_t devices = rng.below(4);
    for (std::uint64_t d = 0; d < devices; ++d)
      p.target_devices.push_back(int(rng.below(8)));
    const mbir::chaos::FaultPlan back =
        mbir::chaos::FaultPlan::fromJson(parseJson(p.toJson()));
    EXPECT_EQ(p.seed, back.seed) << seed;
    EXPECT_EQ(p.launch_fault_rate, back.launch_fault_rate) << seed;
    EXPECT_EQ(p.stall_rate, back.stall_rate) << seed;
    EXPECT_EQ(p.death_rate, back.death_rate) << seed;
    EXPECT_EQ(p.target_devices, back.target_devices) << seed;
  }
}

TEST(JsonWriterRaw, SplicesNestedDocuments) {
  JsonWriter inner;
  inner.beginObject().kv("x", 1).endObject();
  JsonWriter outer;
  outer.beginObject().kv("ok", true);
  outer.key("report").raw(inner.str());
  outer.endObject();
  const JsonValue doc = parseJson(outer.str());
  ASSERT_TRUE(doc.find("report") && doc.find("report")->isObject());
  EXPECT_EQ(doc.find("report")->find("x")->asNumber(), 1.0);
}

}  // namespace
}  // namespace mbir::obs
