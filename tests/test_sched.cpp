// Batch scheduler (src/sched): sharding heterogeneous jobs across simulated
// devices must be bit-identical to running the same jobs serially, for any
// device count and host thread count; plus futures, cancellation, failure
// isolation, the aggregate report, and per-device trace processes.
#include <gtest/gtest.h>

#include <thread>

#include "core/thread_pool.h"
#include "obs/json.h"
#include "sched/scheduler.h"
#include "test_support.h"

namespace mbir {
namespace {

using sched::BatchScheduler;
using sched::BatchReport;
using sched::JobResult;
using sched::SchedulerOptions;

// Heterogeneous job mix: all three engines (PSV pinned to one thread — the
// only deterministic PSV mode, DESIGN.md §7), convergence and fixed-budget
// stops, and GPU variants that exercise different kernels and cache paths.
std::vector<RunConfig> heterogeneousJobs() {
  std::vector<RunConfig> jobs;

  RunConfig seq_budget = test::tinyRunConfig(Algorithm::kSequentialIcd, 2.0);
  seq_budget.stop_rmse_hu = -1.0;  // run the fixed budget
  jobs.push_back(seq_budget);

  jobs.push_back(test::tinyRunConfig(Algorithm::kSequentialIcd, 20.0));

  RunConfig gpu_budget = test::tinyRunConfig(Algorithm::kGpuIcd, 4.0);
  gpu_budget.stop_rmse_hu = -1.0;
  jobs.push_back(gpu_budget);

  jobs.push_back(test::tinyRunConfig(Algorithm::kGpuIcd, 16.0));

  RunConfig gpu_exact = test::tinyRunConfig(Algorithm::kGpuIcd, 4.0);
  gpu_exact.stop_rmse_hu = -1.0;
  gpu_exact.gpu.flags.quantize_amatrix = false;
  jobs.push_back(gpu_exact);

  RunConfig gpu_nocache = test::tinyRunConfig(Algorithm::kGpuIcd, 4.0);
  gpu_nocache.stop_rmse_hu = -1.0;
  gpu_nocache.gpu.chunk_cache_capacity = 0;
  jobs.push_back(gpu_nocache);

  RunConfig gpu_intra = test::tinyRunConfig(Algorithm::kGpuIcd, 4.0);
  gpu_intra.stop_rmse_hu = -1.0;
  gpu_intra.gpu.tunables.threadblocks_per_sv = 8;
  jobs.push_back(gpu_intra);

  RunConfig psv_budget = test::tinyRunConfig(Algorithm::kPsvIcd, 3.0);
  psv_budget.stop_rmse_hu = -1.0;
  psv_budget.psv.num_threads = 1;
  jobs.push_back(psv_budget);

  RunConfig psv_conv = test::tinyRunConfig(Algorithm::kPsvIcd, 16.0);
  psv_conv.psv.num_threads = 1;
  jobs.push_back(psv_conv);

  return jobs;
}

std::vector<RunResult> serialBaseline(const std::vector<RunConfig>& jobs) {
  std::vector<RunResult> out;
  out.reserve(jobs.size());
  for (const RunConfig& cfg : jobs)
    out.push_back(reconstruct(test::tinyProblem(), test::tinyGolden(), cfg));
  return out;
}

TEST(SchedDeterminism, BitIdenticalToSerialForAnyDeviceAndThreadCount) {
  const std::vector<RunConfig> jobs = heterogeneousJobs();
  ASSERT_GE(jobs.size(), 8u);
  const std::vector<RunResult> serial = serialBaseline(jobs);

  for (int devices : {1, 2, 4}) {
    for (unsigned threads : {1u, 2u}) {
      SCOPED_TRACE("devices=" + std::to_string(devices) +
                   " threads=" + std::to_string(threads));
      ThreadPool pool(threads);
      SchedulerOptions opt;
      opt.num_devices = devices;
      opt.host_pool = &pool;
      BatchScheduler s(opt);
      for (const RunConfig& cfg : jobs)
        s.submit(test::tinyProblem(), test::tinyGolden(), cfg);
      s.runAll();
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        const JobResult& r = s.result(int(i));
        EXPECT_FALSE(r.failed) << r.error;
        test::expectRunResultsBitIdentical(serial[i], r.run);
      }
    }
  }
}

TEST(Sched, RoundRobinDeviceAssignment) {
  const std::vector<RunConfig> jobs = heterogeneousJobs();
  SchedulerOptions opt;
  opt.num_devices = 4;
  BatchScheduler s(opt);
  for (const RunConfig& cfg : jobs)
    s.submit(test::tinyProblem(), test::tinyGolden(), cfg);
  s.runAll();
  for (int i = 0; i < s.jobCount(); ++i) EXPECT_EQ(s.result(i).device, i % 4);
}

TEST(Sched, FuturesResolveToResults) {
  SchedulerOptions opt;
  opt.num_devices = 2;
  BatchScheduler s(opt);
  RunConfig cfg = test::tinyRunConfig(Algorithm::kSequentialIcd, 2.0);
  cfg.stop_rmse_hu = -1.0;
  const int a = s.submit(test::tinyProblem(), test::tinyGolden(), cfg, "a");
  const int b = s.submit(test::tinyProblem(), test::tinyGolden(), cfg, "b");
  auto fa = s.future(a);  // requested before runAll
  s.runAll();
  auto fb = s.future(b);  // and after
  ASSERT_EQ(fa.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  ASSERT_EQ(fb.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(fa.get(), &s.result(a));
  EXPECT_EQ(fb.get(), &s.result(b));
  EXPECT_EQ(fa.get()->name, "a");
  EXPECT_EQ(fb.get()->name, "b");
}

TEST(Sched, CancelBeforeRunStopsAtFirstIterationBoundary) {
  SchedulerOptions opt;
  opt.num_devices = 2;
  BatchScheduler s(opt);
  RunConfig cfg = test::tinyRunConfig(Algorithm::kSequentialIcd, 30.0);
  cfg.stop_rmse_hu = -1.0;
  const int victim = s.submit(test::tinyProblem(), test::tinyGolden(), cfg);
  const int other = s.submit(test::tinyProblem(), test::tinyGolden(), cfg);
  s.cancel(victim);
  s.runAll();
  const JobResult& rv = s.result(victim);
  EXPECT_TRUE(rv.cancelled);
  EXPECT_TRUE(rv.run.cancelled);
  EXPECT_FALSE(rv.run.converged);
  EXPECT_TRUE(rv.run.curve.empty());  // stopped before the first sample
  EXPECT_LT(rv.run.equits, 2.0);      // far short of the 30-equit budget
  const JobResult& ro = s.result(other);
  EXPECT_FALSE(ro.cancelled);
  EXPECT_GE(ro.run.equits, 29.0);
  EXPECT_EQ(s.report().jobs_cancelled, 1);
}

TEST(Sched, CancelWhileInFlightTerminatesBatch) {
  // Cancel everything from outside while the batch runs; the batch must
  // drain promptly and every job must be either cancelled or finished.
  SchedulerOptions opt;
  opt.num_devices = 2;
  BatchScheduler s(opt);
  RunConfig cfg = test::tinyRunConfig(Algorithm::kSequentialIcd, 50.0);
  cfg.stop_rmse_hu = -1.0;
  for (int i = 0; i < 6; ++i)
    s.submit(test::tinyProblem(), test::tinyGolden(), cfg);
  auto f0 = s.future(0);
  std::thread canceller([&] {
    f0.wait();  // batch is definitely in flight once job 0 finished
    for (int i = 0; i < s.jobCount(); ++i) s.cancel(i);
  });
  s.runAll();
  canceller.join();
  for (int i = 0; i < s.jobCount(); ++i) {
    const JobResult& r = s.result(i);
    EXPECT_FALSE(r.failed) << r.error;
    // Every job either ran its full budget or was cut short by the cancel.
    if (!r.cancelled) EXPECT_GE(r.run.equits, 49.0);
  }
}

TEST(Sched, FailedJobIsIsolated) {
  SchedulerOptions opt;
  opt.num_devices = 2;
  BatchScheduler s(opt);
  RunConfig good = test::tinyRunConfig(Algorithm::kSequentialIcd, 2.0);
  good.stop_rmse_hu = -1.0;
  RunConfig bad = test::tinyRunConfig(Algorithm::kGpuIcd, 2.0);
  bad.gpu.tunables.threads_per_block = 100;  // not a multiple of 32: throws
  s.submit(test::tinyProblem(), test::tinyGolden(), good, "good0");
  s.submit(test::tinyProblem(), test::tinyGolden(), bad, "bad");
  s.submit(test::tinyProblem(), test::tinyGolden(), good, "good1");
  const BatchReport& rep = s.runAll();
  EXPECT_TRUE(s.result(1).failed);
  EXPECT_FALSE(s.result(1).error.empty());
  EXPECT_FALSE(s.result(0).failed);
  EXPECT_FALSE(s.result(2).failed);
  EXPECT_GT(s.result(0).run.equits, 0.0);
  EXPECT_GT(s.result(2).run.equits, 0.0);
  EXPECT_EQ(rep.jobs_failed, 1);
}

TEST(Sched, ReportAggregatesAreConsistent) {
  const std::vector<RunConfig> jobs = heterogeneousJobs();
  SchedulerOptions opt;
  opt.num_devices = 2;
  BatchScheduler s(opt);
  for (const RunConfig& cfg : jobs)
    s.submit(test::tinyProblem(), test::tinyGolden(), cfg);
  const BatchReport& rep = s.runAll();

  EXPECT_EQ(rep.jobs_total, int(jobs.size()));
  EXPECT_EQ(rep.jobs_failed, 0);
  EXPECT_GT(rep.host_seconds, 0.0);
  EXPECT_GT(rep.jobs_per_host_second, 0.0);
  ASSERT_EQ(rep.device_modeled_s.size(), 2u);

  // Per-device modeled clocks tile exactly: each device's jobs abut, the
  // first job waits zero, and the clocks sum to the batch total.
  double sum_jobs = 0.0, sum_devices = 0.0;
  std::vector<double> clock(2, 0.0);
  for (int i = 0; i < s.jobCount(); ++i) {
    const JobResult& r = s.result(i);
    EXPECT_EQ(r.queue_wait_modeled_s, clock[std::size_t(r.device)]);
    EXPECT_EQ(r.device_start_modeled_s, r.queue_wait_modeled_s);
    EXPECT_EQ(r.device_end_modeled_s,
              r.device_start_modeled_s + r.run.modeled_seconds);
    clock[std::size_t(r.device)] = r.device_end_modeled_s;
    sum_jobs += r.run.modeled_seconds;
  }
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(rep.device_modeled_s[d], clock[d]);
    sum_devices += rep.device_modeled_s[d];
  }
  EXPECT_DOUBLE_EQ(rep.modeled_device_seconds_total, sum_jobs);
  EXPECT_DOUBLE_EQ(sum_devices, sum_jobs);
  EXPECT_EQ(rep.makespan_modeled_s,
            std::max(rep.device_modeled_s[0], rep.device_modeled_s[1]));
  EXPECT_GE(rep.queue_wait_max_s, rep.queue_wait_mean_s);
}

TEST(Sched, BatchReportJsonParses) {
  SchedulerOptions opt;
  opt.num_devices = 2;
  BatchScheduler s(opt);
  RunConfig cfg = test::tinyRunConfig(Algorithm::kSequentialIcd, 2.0);
  cfg.stop_rmse_hu = -1.0;
  for (int i = 0; i < 3; ++i)
    s.submit(test::tinyProblem(), test::tinyGolden(), cfg);
  s.runAll();
  const obs::JsonValue doc = obs::parseJson(s.reportJson());
  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.find("schema")->asString(), "gpumbir.batch_report/1");
  EXPECT_EQ(doc.find("jobs_total")->asNumber(), 3.0);
  EXPECT_EQ(doc.find("num_devices")->asNumber(), 2.0);
  const obs::JsonValue* jobs = doc.find("jobs");
  ASSERT_TRUE(jobs && jobs->isArray());
  ASSERT_EQ(jobs->array_v.size(), 3u);
  for (const obs::JsonValue& j : jobs->array_v) {
    EXPECT_TRUE(j.find("name")->isString());
    EXPECT_GE(j.find("modeled_seconds")->asNumber(), 0.0);
    EXPECT_GE(j.find("queue_wait_modeled_s")->asNumber(), 0.0);
  }
}

TEST(Sched, SharedRecorderSeesDevicesAndJobs) {
  obs::ObsConfig ocfg;
  ocfg.metrics = true;
  ocfg.trace = true;
  obs::Recorder rec(ocfg);
  SchedulerOptions opt;
  opt.num_devices = 2;
  opt.recorder = &rec;
  BatchScheduler s(opt);
  RunConfig cfg = test::tinyRunConfig(Algorithm::kGpuIcd, 3.0);
  cfg.stop_rmse_hu = -1.0;
  for (int i = 0; i < 4; ++i)
    s.submit(test::tinyProblem(), test::tinyGolden(), cfg);
  s.runAll();

  EXPECT_EQ(rec.metrics().counterValue("sched.jobs.completed"), 4u);
  EXPECT_EQ(rec.metrics().counterValue("sched.jobs.cancelled"), 0u);
  EXPECT_GT(rec.metrics().counterValue("gsim.launch.count"), 0u);

  // The trace declares one process per device and attributes modeled-clock
  // spans to the device pids.
  const obs::JsonValue doc = obs::parseJson(rec.trace().toJson());
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_TRUE(events && events->isArray());
  bool named_dev0 = false, named_dev1 = false;
  bool span_on_dev0 = false, span_on_dev1 = false;
  for (const obs::JsonValue& ev : events->array_v) {
    const obs::JsonValue* name = ev.find("name");
    const obs::JsonValue* pid = ev.find("pid");
    if (!name || !pid) continue;
    if (name->asString() == "process_name") {
      const obs::JsonValue* args = ev.find("args");
      if (args && args->find("name")) {
        if (args->find("name")->asString() == "device 0 (modeled)")
          named_dev0 = true;
        if (args->find("name")->asString() == "device 1 (modeled)")
          named_dev1 = true;
      }
    } else {
      if (pid->asNumber() == 10.0) span_on_dev0 = true;
      if (pid->asNumber() == 11.0) span_on_dev1 = true;
    }
  }
  EXPECT_TRUE(named_dev0);
  EXPECT_TRUE(named_dev1);
  EXPECT_TRUE(span_on_dev0);
  EXPECT_TRUE(span_on_dev1);
}

TEST(SchedDeterminism, ObservabilityDoesNotPerturbResults) {
  RunConfig cfg = test::tinyRunConfig(Algorithm::kGpuIcd, 3.0);
  cfg.stop_rmse_hu = -1.0;

  const auto run_batch = [&](obs::Recorder* rec) {
    SchedulerOptions opt;
    opt.num_devices = 2;
    opt.recorder = rec;
    BatchScheduler s(opt);
    for (int i = 0; i < 4; ++i)
      s.submit(test::tinyProblem(), test::tinyGolden(), cfg);
    s.runAll();
    std::vector<std::uint64_t> hashes;
    for (int i = 0; i < s.jobCount(); ++i)
      hashes.push_back(test::imageHash(s.result(i).run.image));
    return hashes;
  };

  obs::ObsConfig ocfg;
  ocfg.metrics = true;
  ocfg.trace = true;
  obs::Recorder rec(ocfg);
  EXPECT_EQ(run_batch(nullptr), run_batch(&rec));
}

TEST(Sched, RaceCheckedBatchIsCleanAndBitIdentical) {
  // A 2-device batch with fatal race checking on every job: each device's
  // simulator carries its own detector, every launch on every device is
  // checked, all come out clean, and checking does not perturb results —
  // the batch stays bit-identical to the serial unchecked baseline.
  RunConfig checked = test::tinyRunConfig(Algorithm::kGpuIcd, 4.0);
  checked.stop_rmse_hu = -1.0;
  checked.gpu.race_check = {
      .enabled = true, .throw_on_race = true, .max_reports = 64};
  RunConfig unchecked = checked;
  unchecked.gpu.race_check = {};

  const std::vector<RunResult> serial =
      serialBaseline(std::vector<RunConfig>(4, unchecked));

  SchedulerOptions opt;
  opt.num_devices = 2;
  BatchScheduler s(opt);
  for (int i = 0; i < 4; ++i)
    s.submit(test::tinyProblem(), test::tinyGolden(), checked);
  s.runAll();

  for (int i = 0; i < 4; ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    const JobResult& r = s.result(i);
    ASSERT_FALSE(r.failed) << r.error;
    ASSERT_TRUE(r.run.gpu_stats);
    EXPECT_TRUE(r.run.gpu_stats->race_check_enabled);
    EXPECT_GT(r.run.gpu_stats->race_launches_checked, 0u);
    EXPECT_EQ(r.run.gpu_stats->race_reports, 0u);
    test::expectRunResultsBitIdentical(serial[std::size_t(i)], r.run);
  }

  // The batch report carries the per-job race-check summary.
  const obs::JsonValue doc = obs::parseJson(s.reportJson());
  const obs::JsonValue* jobs = doc.find("jobs");
  ASSERT_TRUE(jobs && jobs->isArray());
  ASSERT_EQ(jobs->array_v.size(), 4u);
  for (const obs::JsonValue& j : jobs->array_v) {
    const obs::JsonValue* rc = j.find("race_check");
    ASSERT_TRUE(rc && rc->isObject());
    EXPECT_TRUE(rc->find("enabled")->asBool());
    EXPECT_GT(rc->find("launches_checked")->asNumber(), 0.0);
    EXPECT_EQ(rc->find("races_found")->asNumber(), 0.0);
  }
}

}  // namespace
}  // namespace mbir
