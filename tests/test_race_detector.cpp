// Conformance tests for the device-semantics race detector (gsim/race_check):
// planted races through real simulated launches must be diagnosed with the
// right (kernel, block pair, buffer, element range) attribution, race-free
// controls must stay silent, and the shipped GPU-ICD kernels must come out
// clean with bit-identical results whether or not checking is on. Also
// cross-checks the analytic checkerboard-schedule argument in
// gpuicd/conflicts.h against the detector (DESIGN.md §8).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/error.h"
#include "gpuicd/conflicts.h"
#include "gpuicd/gpu_icd.h"
#include "gsim/executor.h"
#include "gsim/race_check.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "sv/supervoxel.h"
#include "test_support.h"

namespace mbir {
namespace {

using gsim::AccessKind;
using gsim::BlockAccessLog;
using gsim::BlockCtx;
using gsim::GpuSimulator;
using gsim::RaceCheckConfig;
using gsim::RaceDetector;
using gsim::RaceReport;

/// Checking on, diagnoses recorded instead of thrown — the planted-race
/// tests inspect the report. Explicit so the tests behave identically with
/// or without GPUMBIR_RACE_CHECK in the environment (the CI race job sets
/// it).
RaceCheckConfig recordOnly() {
  return {.enabled = true, .throw_on_race = false, .max_reports = 64};
}

// ---------- detector core: conflict matrix and sweep ----------

TEST(RaceDetector, WriteWriteOverlapDiagnosed) {
  RaceDetector det(recordOnly());
  const int buf = det.bufferId("image");
  std::vector<BlockAccessLog> logs(2);
  logs[0].write(buf, 0, 10);
  logs[1].write(buf, 5, 15);
  EXPECT_EQ(det.checkLaunch("planted_ww", logs), 1);

  ASSERT_EQ(det.races().size(), 1u);
  const RaceReport& r = det.races()[0];
  EXPECT_EQ(r.kernel, "planted_ww");
  EXPECT_EQ(r.buffer, "image");
  EXPECT_EQ(r.block_a, 0);
  EXPECT_EQ(r.block_b, 1);
  EXPECT_EQ(r.kind_a, AccessKind::kWrite);
  EXPECT_EQ(r.kind_b, AccessKind::kWrite);
  EXPECT_EQ(r.lo, 5);  // the overlapping sub-range, not either full range
  EXPECT_EQ(r.hi, 10);
  EXPECT_EQ(r.phase, 0);
}

TEST(RaceDetector, ReadWriteOverlapDiagnosed) {
  RaceDetector det(recordOnly());
  const int buf = det.bufferId("sino.e");
  std::vector<BlockAccessLog> logs(3);
  logs[0].read(buf, 100, 200);
  logs[2].write(buf, 150, 160);
  EXPECT_EQ(det.checkLaunch("planted_rw", logs), 1);
  ASSERT_EQ(det.races().size(), 1u);
  const RaceReport& r = det.races()[0];
  EXPECT_EQ(r.block_a, 0);
  EXPECT_EQ(r.block_b, 2);
  EXPECT_EQ(r.kind_a, AccessKind::kRead);
  EXPECT_EQ(r.kind_b, AccessKind::kWrite);
  EXPECT_EQ(r.lo, 150);
  EXPECT_EQ(r.hi, 160);
}

TEST(RaceDetector, AtomicVsPlainWriteDiagnosed) {
  RaceDetector det(recordOnly());
  const int buf = det.bufferId("svb.e/0");
  std::vector<BlockAccessLog> logs(2);
  logs[0].atomic(buf, 0, 48);
  logs[1].write(buf, 10, 11);
  EXPECT_EQ(det.checkLaunch("planted_aw", logs), 1);
  ASSERT_EQ(det.races().size(), 1u);
  EXPECT_EQ(det.races()[0].kind_a, AccessKind::kAtomic);
  EXPECT_EQ(det.races()[0].kind_b, AccessKind::kWrite);
}

TEST(RaceDetector, AtomicVsReadDiagnosed) {
  // A plain load concurrent with an atomic RMW has undefined ordering at
  // device semantics — the conflict matrix only exempts R/R and A/A.
  RaceDetector det(recordOnly());
  const int buf = det.bufferId("sino.e");
  std::vector<BlockAccessLog> logs(2);
  logs[0].atomic(buf, 0, 8);
  logs[1].read(buf, 4, 6);
  EXPECT_EQ(det.checkLaunch("planted_ar", logs), 1);
}

TEST(RaceDetector, ReadReadAndAtomicAtomicAreClean) {
  RaceDetector det(recordOnly());
  const int buf = det.bufferId("image");
  std::vector<BlockAccessLog> logs(4);
  // Disjoint regions: all blocks share reads of [0, 512) and atomics of
  // [512, 1024). R/R and A/A are the two exempt kind pairs; the regions
  // must not overlap each other or read-vs-atomic would (correctly) fire.
  for (auto& log : logs) {
    log.read(buf, 0, 512);
    log.atomic(buf, 512, 1024);
  }
  EXPECT_EQ(det.checkLaunch("all_shared", logs), 0);
  EXPECT_TRUE(det.races().empty());
  EXPECT_EQ(det.totals().races_found, 0u);
}

TEST(RaceDetector, AdjacentRangesAreNotARace) {
  // False-sharing control: the blocks partition one buffer into touching
  // but non-overlapping half-open stripes — element-granularity checking
  // must stay silent (a byte/cacheline checker would not).
  RaceDetector det(recordOnly());
  const int buf = det.bufferId("image");
  std::vector<BlockAccessLog> logs(8);
  for (int b = 0; b < 8; ++b) logs[b].write(buf, b * 16, (b + 1) * 16);
  EXPECT_EQ(det.checkLaunch("striped", logs), 0);
  EXPECT_TRUE(det.races().empty());
  const gsim::RaceCheckTotals t = det.totals();
  EXPECT_EQ(t.launches_checked, 1u);
  EXPECT_EQ(t.blocks_checked, 8u);
  EXPECT_EQ(t.ranges_checked, 8u);
}

TEST(RaceDetector, DistinctBuffersNeverConflict) {
  RaceDetector det(recordOnly());
  std::vector<BlockAccessLog> logs(2);
  logs[0].write(det.bufferId("svb.e/0"), 0, 100);
  logs[1].write(det.bufferId("svb.e/1"), 0, 100);
  EXPECT_EQ(det.checkLaunch("private_buffers", logs), 0);
}

TEST(RaceDetector, PhaseBoundarySeparatesConflictingAccesses) {
  // Same block pair, same range: a write in phase 0 against a read in
  // phase 1 models barrier-separated passes and must not be diagnosed...
  RaceDetector det(recordOnly());
  const int buf = det.bufferId("image");
  {
    std::vector<BlockAccessLog> logs(2);
    logs[0].write(buf, 0, 64);
    logs[1].setPhase(1);
    logs[1].read(buf, 0, 64);
    EXPECT_EQ(det.checkLaunch("phased", logs), 0);
  }
  // ...while the identical accesses without the phase bump are a race.
  {
    std::vector<BlockAccessLog> logs(2);
    logs[0].write(buf, 0, 64);
    logs[1].read(buf, 0, 64);
    EXPECT_EQ(det.checkLaunch("unphased", logs), 1);
  }
}

TEST(RaceDetector, PhasesMustBeMonotonicPerBlock) {
  BlockAccessLog log;
  log.setPhase(2);
  EXPECT_THROW(log.setPhase(1), Error);
}

TEST(RaceDetector, DuplicateDiagnosesAreDeduplicated) {
  // Many overlapping row ranges between one block pair are one logical
  // race per kind pair, not one per row.
  RaceDetector det(recordOnly());
  const int buf = det.bufferId("image");
  std::vector<BlockAccessLog> logs(2);
  for (int row = 0; row < 10; row += 2) {  // gaps defeat coalescing
    logs[0].write(buf, row * 100, row * 100 + 50);
    logs[1].write(buf, row * 100, row * 100 + 50);
  }
  EXPECT_EQ(det.checkLaunch("rows", logs), 1);
  EXPECT_EQ(det.races().size(), 1u);
}

TEST(RaceDetector, MaxReportsCapsStorageNotCounting) {
  RaceDetector det({.enabled = true, .throw_on_race = false, .max_reports = 2});
  const int buf = det.bufferId("image");
  std::vector<BlockAccessLog> logs(5);
  for (auto& log : logs) log.write(buf, 0, 10);  // every pair races
  EXPECT_EQ(det.checkLaunch("noisy", logs), 10);
  EXPECT_EQ(det.races().size(), 2u);  // storage capped...
  EXPECT_EQ(det.totals().races_found, 10u);  // ...the count is not
}

TEST(RaceDetector, EmptyRangesCarryNoAccesses) {
  RaceDetector det(recordOnly());
  const int buf = det.bufferId("image");
  std::vector<BlockAccessLog> logs(2);
  logs[0].write(buf, 5, 5);
  logs[1].write(buf, 0, 10);
  EXPECT_TRUE(logs[0].empty());
  EXPECT_EQ(det.checkLaunch("empty", logs), 0);
}

// ---------- config plumbing ----------

/// Set/unset an environment variable for one scope, restoring the prior
/// value on exit so tests compose with the CI job's GPUMBIR_RACE_CHECK=1.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_old_)
      ::setenv(name_.c_str(), old_.c_str(), 1);
    else
      ::unsetenv(name_.c_str());
  }

 private:
  std::string name_, old_;
  bool had_old_ = false;
};

TEST(RaceCheckConfigTest, FromEnvDefaultsOff) {
  ScopedEnv e1("GPUMBIR_RACE_CHECK", nullptr);
  ScopedEnv e2("GPUMBIR_RACE_CHECK_THROW", nullptr);
  const RaceCheckConfig cfg = RaceCheckConfig::fromEnv();
  EXPECT_FALSE(cfg.enabled);
  EXPECT_FALSE(cfg.throw_on_race);
}

TEST(RaceCheckConfigTest, FromEnvEnableImpliesThrow) {
  ScopedEnv e1("GPUMBIR_RACE_CHECK", "1");
  ScopedEnv e2("GPUMBIR_RACE_CHECK_THROW", nullptr);
  const RaceCheckConfig cfg = RaceCheckConfig::fromEnv();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_TRUE(cfg.throw_on_race);
}

TEST(RaceCheckConfigTest, FromEnvThrowOverride) {
  ScopedEnv e1("GPUMBIR_RACE_CHECK", "1");
  ScopedEnv e2("GPUMBIR_RACE_CHECK_THROW", "0");
  const RaceCheckConfig cfg = RaceCheckConfig::fromEnv();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_FALSE(cfg.throw_on_race);
}

TEST(RaceCheckConfigTest, FromEnvZeroDisables) {
  ScopedEnv e1("GPUMBIR_RACE_CHECK", "0");
  const RaceCheckConfig cfg = RaceCheckConfig::fromEnv();
  EXPECT_FALSE(cfg.enabled);
}

// ---------- planted races through real simulated launches ----------

TEST(RaceLaunch, PlantedWriteWriteDiagnosedWithAttribution) {
  GpuSimulator sim;
  sim.setRaceCheck(recordOnly());
  const int buf = sim.raceDetector().bufferId("image");

  sim.launch({.name = "planted_ww", .num_blocks = 4, .resources = {256, 32, 0}},
             [&](BlockCtx& ctx) {
               // Every block writes the same range — racy on purpose.
               ctx.prof.raceWrite(buf, 0, 128);
             });

  const gsim::RaceCheckTotals t = sim.raceDetector().totals();
  EXPECT_EQ(t.launches_checked, 1u);
  EXPECT_EQ(t.blocks_checked, 4u);
  EXPECT_EQ(t.races_found, 6u);  // all C(4,2) block pairs
  ASSERT_FALSE(sim.raceDetector().races().empty());
  for (const RaceReport& r : sim.raceDetector().races()) {
    EXPECT_EQ(r.kernel, "planted_ww");
    EXPECT_EQ(r.buffer, "image");
    EXPECT_LT(r.block_a, r.block_b);
    EXPECT_EQ(r.lo, 0);
    EXPECT_EQ(r.hi, 128);
  }
}

TEST(RaceLaunch, PerBlockStripesAreClean) {
  // Owner-computes partitioning: every block reads and writes only its own
  // stripe. This is the shape the writeback kernel relies on.
  GpuSimulator sim;
  sim.setRaceCheck(recordOnly());
  const int buf = sim.raceDetector().bufferId("image");
  sim.launch({.name = "striped", .num_blocks = 16, .resources = {256, 32, 0}},
             [&](BlockCtx& ctx) {
               const std::int64_t lo = std::int64_t(ctx.block_idx) * 64;
               ctx.prof.raceWrite(buf, lo, lo + 64);
               ctx.prof.raceRead(buf, lo, lo + 64);
             });
  EXPECT_EQ(sim.raceDetector().totals().races_found, 0u);
  EXPECT_EQ(sim.raceDetector().totals().blocks_checked, 16u);

  // The broken variant — every block also reads the whole buffer, crossing
  // other blocks' written stripes — must be diagnosed.
  sim.setRaceCheck(recordOnly());
  const int buf2 = sim.raceDetector().bufferId("image");
  sim.launch({.name = "cross_read", .num_blocks = 16, .resources = {256, 32, 0}},
             [&](BlockCtx& ctx) {
               const std::int64_t lo = std::int64_t(ctx.block_idx) * 64;
               ctx.prof.raceWrite(buf2, lo, lo + 64);
               ctx.prof.raceRead(buf2, 0, 16 * 64);
             });
  EXPECT_GT(sim.raceDetector().totals().races_found, 0u);
}

TEST(RaceLaunch, PhaseSeparatedReadAfterWriteIsClean) {
  // Grid-sync idiom: phase 0 writes private stripes, phase 1 reads the
  // whole buffer. Without the racePhase calls the cross-stripe reads race.
  GpuSimulator sim;
  sim.setRaceCheck(recordOnly());
  const int buf = sim.raceDetector().bufferId("scratch");

  const auto kernel = [&](bool phased) {
    return [&, phased](BlockCtx& ctx) {
      const std::int64_t lo = std::int64_t(ctx.block_idx) * 32;
      ctx.prof.raceWrite(buf, lo, lo + 32);
      if (phased) ctx.prof.racePhase(1);
      ctx.prof.raceRead(buf, 0, 8 * 32);
    };
  };
  sim.launch({.name = "grid_sync", .num_blocks = 8, .resources = {256, 32, 0}},
             kernel(true));
  EXPECT_EQ(sim.raceDetector().totals().races_found, 0u);

  sim.launch({.name = "no_sync", .num_blocks = 8, .resources = {256, 32, 0}},
             kernel(false));
  EXPECT_GT(sim.raceDetector().totals().races_found, 0u);
  for (const RaceReport& r : sim.raceDetector().races())
    EXPECT_EQ(r.kernel, "no_sync");
}

TEST(RaceLaunch, ThrowOnRaceFailsTheLaunchButKeepsTheReport) {
  GpuSimulator sim;
  sim.setRaceCheck({.enabled = true, .throw_on_race = true, .max_reports = 64});
  const int buf = sim.raceDetector().bufferId("image");

  EXPECT_THROW(
      sim.launch({.name = "fatal", .num_blocks = 2, .resources = {256, 32, 0}},
                 [&](BlockCtx& ctx) { ctx.prof.raceWrite(buf, 0, 8); }),
      Error);
  // The diagnosis was recorded before the throw, so a catch site can still
  // read and export the report.
  EXPECT_EQ(sim.raceDetector().totals().races_found, 1u);
  EXPECT_EQ(sim.raceDetector().races()[0].kernel, "fatal");
}

TEST(RaceLaunch, DisabledCheckRecordsNothing) {
  GpuSimulator sim;
  sim.setRaceCheck({});  // explicit off, independent of the environment
  EXPECT_FALSE(sim.raceCheckOn());
  const int buf = sim.raceDetector().bufferId("image");
  sim.launch({.name = "off", .num_blocks = 4, .resources = {256, 32, 0}},
             [&](BlockCtx& ctx) {
               EXPECT_FALSE(ctx.prof.raceCheckOn());
               ctx.prof.raceWrite(buf, 0, 8);  // dropped: no log attached
             });
  EXPECT_EQ(sim.raceDetector().totals().launches_checked, 0u);
  EXPECT_TRUE(sim.raceDetector().races().empty());
}

TEST(RaceLaunch, KernelExceptionPropagatesFromConcurrentBlocks) {
  // Blocks run via ThreadPool::parallelFor; a throwing kernel must surface
  // as an exception from launch(), not std::terminate (regression for the
  // pool's exception propagation).
  GpuSimulator sim;
  EXPECT_THROW(
      sim.launch({.name = "boom", .num_blocks = 32, .resources = {256, 32, 0}},
                 [&](BlockCtx& ctx) {
                   if (ctx.block_idx == 17) throw Error("planted failure");
                 }),
      Error);
  // The simulator stays usable afterwards.
  sim.launch({.name = "ok", .num_blocks = 4, .resources = {256, 32, 0}},
             [](BlockCtx&) {});
}

// ---------- report artifact and metrics ----------

TEST(RaceReportJson, SchemaAndDiagnosisFields) {
  GpuSimulator sim;
  sim.setRaceCheck(recordOnly());
  const int buf = sim.raceDetector().bufferId("sino.e");
  sim.launch({.name = "planted", .num_blocks = 2, .resources = {256, 32, 0}},
             [&](BlockCtx& ctx) {
               if (ctx.block_idx == 0)
                 ctx.prof.raceWrite(buf, 40, 60);
               else
                 ctx.prof.raceRead(buf, 50, 70);
             });

  const obs::JsonValue doc =
      obs::parseJson(sim.raceDetector().reportJson());
  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.find("schema")->asString(), "gpumbir.race_report/1");
  EXPECT_EQ(doc.find("totals")->find("launches_checked")->asNumber(), 1.0);
  EXPECT_EQ(doc.find("totals")->find("races_found")->asNumber(), 1.0);
  EXPECT_EQ(doc.find("races_reported")->asNumber(), 1.0);

  const obs::JsonValue* arr = doc.find("races");
  ASSERT_TRUE(arr && arr->isArray());
  ASSERT_EQ(arr->array_v.size(), 1u);
  const obs::JsonValue& r = arr->array_v[0];
  EXPECT_EQ(r.find("kernel")->asString(), "planted");
  EXPECT_EQ(r.find("buffer")->asString(), "sino.e");
  EXPECT_EQ(r.find("block_a")->asNumber(), 0.0);
  EXPECT_EQ(r.find("block_b")->asNumber(), 1.0);
  EXPECT_EQ(r.find("kind_a")->asString(), "write");
  EXPECT_EQ(r.find("kind_b")->asString(), "read");
  EXPECT_EQ(r.find("lo")->asNumber(), 50.0);
  EXPECT_EQ(r.find("hi")->asNumber(), 60.0);
}

TEST(RaceMetrics, GsimRaceCountersRecorded) {
  obs::Recorder rec({.metrics = true});
  GpuSimulator sim;
  sim.setRaceCheck(recordOnly());
  sim.setRecorder(&rec);
  const int buf = sim.raceDetector().bufferId("image");
  sim.launch({.name = "planted", .num_blocks = 3, .resources = {256, 32, 0}},
             [&](BlockCtx& ctx) { ctx.prof.raceWrite(buf, 0, 16); });

  EXPECT_EQ(rec.metrics().counterValue("gsim.race.launches_checked"), 1u);
  EXPECT_EQ(rec.metrics().counterValue("gsim.race.ranges_checked"), 3u);
  EXPECT_EQ(rec.metrics().counterValue("gsim.race.races_found"), 3u);
}

// ---------- checkerboard schedule cross-check ----------

TEST(ScheduleCrossCheck, CheckerboardGroupsAreConflictFree) {
  // The paper's §4.2 claim, re-derived by the detector: same-group SVs'
  // written rects and read rings never intersect while
  // boundary_overlap <= (sv_side - 1) / 2.
  for (const int overlap : {0, 1, 2, 3}) {
    const SvGrid grid(64, {.sv_side = 8, .boundary_overlap = overlap});
    std::vector<int> all(std::size_t(grid.count()));
    for (int i = 0; i < grid.count(); ++i) all[std::size_t(i)] = i;
    for (const std::vector<int>& group : grid.checkerboardGroups(all)) {
      if (group.size() < 2) continue;
      EXPECT_EQ(scheduleImageConflicts(grid, group, nullptr), 0)
          << "overlap=" << overlap;
    }
  }
}

TEST(ScheduleCrossCheck, AdjacentSvsConflictPositiveControl) {
  // Two horizontally adjacent SVs with overlap share boundary voxels; both
  // the analytic count and the detector must flag the pair (and agree —
  // disagreement would throw inside scheduleImageConflicts).
  const SvGrid grid(64, {.sv_side = 8, .boundary_overlap = 2});
  ASSERT_GE(grid.gridCols(), 2);
  RaceDetector det(recordOnly());
  const int conflicts = scheduleImageConflicts(grid, {0, 1}, &det);
  EXPECT_EQ(conflicts, 1);
  EXPECT_GT(det.totals().races_found, 0u);
  ASSERT_FALSE(det.races().empty());
  EXPECT_EQ(det.races()[0].kernel, "schedule_check");
  EXPECT_EQ(det.races()[0].buffer, "image");
}

TEST(ScheduleCrossCheck, ZeroOverlapAdjacentSvsStillRingConflict) {
  // Even with no shared voxels, the prior's 1-voxel read ring crosses the
  // tile edge, so adjacent SVs conflict (write/read) — which is exactly why
  // the schedule skips a full tile, not just the overlap.
  const SvGrid grid(64, {.sv_side = 8, .boundary_overlap = 0});
  EXPECT_GT(scheduleImageConflicts(grid, {0, 1}, nullptr), 0);
}

// ---------- shipped engine kernels are race-clean ----------

class RaceEngineFixture : public ::testing::Test {
 protected:
  GpuRunStats runGpu(GpuIcdOptions opt, double max_equits, Image2D& x_out) {
    const OwnedProblem& problem = test::tinyProblem();
    x_out = problem.fbpInitialImage();
    Sinogram e = problem.initialError(x_out);
    GpuIcd icd(problem.view(), test::tinyGpuOptions(std::move(opt)));
    return icd.run(x_out, e, [&](const GpuIterationInfo& info) {
      return info.equits < max_equits;
    });
  }
};

TEST_F(RaceEngineFixture, GpuIcdKernelsCleanUnderRaceCheck) {
  GpuIcdOptions opt;
  opt.race_check = {.enabled = true, .throw_on_race = true, .max_reports = 64};
  Image2D x;
  const GpuRunStats stats = runGpu(std::move(opt), 6.0, x);
  EXPECT_TRUE(stats.race_check_enabled);
  EXPECT_GT(stats.race_launches_checked, 0u);
  EXPECT_GT(stats.race_ranges_checked, 0u);
  EXPECT_EQ(stats.race_reports, 0u);
}

TEST_F(RaceEngineFixture, ResultsBitIdenticalWithAndWithoutChecking) {
  GpuIcdOptions checked;
  checked.race_check = {.enabled = true, .throw_on_race = true};
  GpuIcdOptions unchecked;
  unchecked.race_check = {};
  Image2D xa, xb;
  const GpuRunStats sa = runGpu(std::move(checked), 4.0, xa);
  const GpuRunStats sb = runGpu(std::move(unchecked), 4.0, xb);
  EXPECT_TRUE(sa.race_check_enabled);
  EXPECT_FALSE(sb.race_check_enabled);
  test::expectGpuRunsBitIdentical(sa, xa, sb, xb);
}

}  // namespace
}  // namespace mbir
