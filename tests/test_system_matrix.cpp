// Tests for the sparse system matrix and projectors — the geometric
// substrate every algorithm relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "geom/footprint.h"
#include "geom/projector.h"
#include "geom/system_matrix.h"
#include "phantom/analytic_projection.h"
#include "phantom/ellipse.h"
#include "phantom/rasterize.h"
#include "test_util.h"

namespace mbir {
namespace {

class SystemMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = test::tinyGeometry();
    A_ = test::cachedMatrix(g_);
  }
  ParallelBeamGeometry g_;
  std::shared_ptr<const SystemMatrix> A_;
};

TEST_F(SystemMatrixTest, RowSumEqualsPixelAreaOverSpacing) {
  // sum_j A[v][j] * spacing = integral of the footprint = pixel_area,
  // for any voxel whose footprint is not clipped by the detector edge.
  const int n = g_.image_size;
  const std::size_t voxel = std::size_t(n / 2) * std::size_t(n) + std::size_t(n / 2);
  const double expect = g_.pixel_size_mm * g_.pixel_size_mm / g_.channel_spacing_mm;
  for (int v = 0; v < g_.num_views; ++v) {
    double sum = 0.0;
    for (float w : A_->weights(voxel, v)) sum += double(w);
    EXPECT_NEAR(sum, expect, expect * 1e-4) << "view " << v;
  }
}

TEST_F(SystemMatrixTest, RunsWithinDetector) {
  for (std::size_t voxel = 0; voxel < A_->numVoxels(); voxel += 17) {
    for (int v = 0; v < g_.num_views; ++v) {
      const auto& r = A_->run(voxel, v);
      if (r.count == 0) continue;
      EXPECT_GE(int(r.first_channel), 0);
      EXPECT_LE(int(r.first_channel) + int(r.count), g_.num_channels);
    }
  }
}

TEST_F(SystemMatrixTest, WeightsPositiveAfterTrim) {
  // Trimming removes zero edge entries; first and last weight of every run
  // must be strictly positive.
  for (std::size_t voxel = 0; voxel < A_->numVoxels(); voxel += 13) {
    for (int v = 0; v < g_.num_views; ++v) {
      const auto w = A_->weights(voxel, v);
      if (w.empty()) continue;
      EXPECT_GT(w.front(), 0.0f);
      EXPECT_GT(w.back(), 0.0f);
    }
  }
}

TEST_F(SystemMatrixTest, VoxelMaxIsColumnMax) {
  for (std::size_t voxel = 0; voxel < A_->numVoxels(); voxel += 31) {
    float vmax = 0.0f;
    A_->forEachEntry(voxel, [&](int, int, float w) { vmax = std::max(vmax, w); });
    EXPECT_FLOAT_EQ(A_->voxelMax(voxel), vmax);
  }
}

TEST_F(SystemMatrixTest, MaxFootprintWidthCoversAllRuns) {
  int widest = 0;
  for (std::size_t voxel = 0; voxel < A_->numVoxels(); ++voxel)
    for (int v = 0; v < g_.num_views; ++v)
      widest = std::max(widest, int(A_->run(voxel, v).count));
  EXPECT_EQ(A_->maxFootprintWidth(), widest);
  // Geometric sanity: footprint <= pixel diagonal / spacing + 2.
  const double diag = g_.pixel_size_mm * std::sqrt(2.0);
  EXPECT_LE(widest, int(diag / g_.channel_spacing_mm) + 3);
}

TEST_F(SystemMatrixTest, ColumnSumSquaresMatchesManual) {
  const std::size_t voxel = 5 * 32 + 9;
  double manual = 0.0;
  A_->forEachEntry(voxel, [&](int, int, float w) { manual += double(w) * w; });
  EXPECT_NEAR(A_->columnSumSquares(voxel), manual, 1e-12);
}

TEST_F(SystemMatrixTest, AdjointnessOfProjectors) {
  // <A x, y> == <x, A^T y> for random x, y.
  Rng rng(3);
  Image2D x(g_.image_size);
  for (float& v : x.flat()) v = float(rng.uniform());
  Sinogram y(g_);
  for (float& v : y.flat()) v = float(rng.uniform());

  const Sinogram ax = forwardProject(*A_, x);
  const Image2D aty = backProject(*A_, y);

  const double lhs = innerProductSino(ax, y);
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.numVoxels(); ++i)
    rhs += double(x[i]) * double(aty[i]);
  EXPECT_NEAR(lhs, rhs, std::abs(lhs) * 1e-5);
}

TEST_F(SystemMatrixTest, ForwardProjectionMatchesAnalytic) {
  // Discrete projection of a rasterized disc should approximate the exact
  // line integrals away from the edge.
  EllipsePhantom phantom;
  phantom.ellipses.push_back({0.0, 0.0, 8.0, 8.0, 0.0, 0.02});
  const Image2D img = rasterize(phantom, g_, 4);
  const Sinogram discrete = forwardProject(*A_, img);
  const Sinogram exact = analyticProject(phantom, g_);

  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < discrete.flat().size(); ++i) {
    err += std::abs(double(discrete.flat()[i]) - double(exact.flat()[i]));
    ref += std::abs(double(exact.flat()[i]));
  }
  EXPECT_LT(err / ref, 0.03);  // 3% relative L1
}

TEST_F(SystemMatrixTest, ErrorSinogramIsResidual) {
  Rng rng(5);
  Image2D x(g_.image_size);
  for (float& v : x.flat()) v = float(rng.uniform() * 0.01);
  EllipsePhantom phantom;
  phantom.ellipses.push_back({1.0, -2.0, 6.0, 5.0, 0.4, 0.02});
  const Sinogram y = analyticProject(phantom, g_);
  const Sinogram e = errorSinogram(*A_, y, x);
  const Sinogram ax = forwardProject(*A_, x);
  for (int v = 0; v < g_.num_views; v += 11)
    for (int c = 0; c < g_.num_channels; c += 7)
      EXPECT_NEAR(e(v, c), y(v, c) - ax(v, c), 1e-5);
}

TEST_F(SystemMatrixTest, ZeroImageForwardProjectsToZero) {
  Image2D x(g_.image_size);
  const Sinogram y = forwardProject(*A_, x);
  EXPECT_DOUBLE_EQ(y.sumSquares(), 0.0);
}

struct GeometryCase {
  int views, channels, size;
};

class MatrixGeometrySweep : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(MatrixGeometrySweep, BuildsConsistently) {
  const auto p = GetParam();
  ParallelBeamGeometry g = test::tinyGeometry();
  g.num_views = p.views;
  g.num_channels = p.channels;
  g.image_size = p.size;
  const SystemMatrix A = SystemMatrix::compute(g);
  EXPECT_EQ(A.numVoxels(), std::size_t(p.size) * std::size_t(p.size));
  EXPECT_GT(A.nnz(), 0u);
  EXPECT_GT(A.maxFootprintWidth(), 0);
  // Center voxel is never fully clipped.
  const std::size_t center =
      std::size_t(p.size / 2) * std::size_t(p.size) + std::size_t(p.size / 2);
  std::size_t nnz = 0;
  A.forEachEntry(center, [&](int, int, float) { ++nnz; });
  EXPECT_GE(nnz, std::size_t(p.views));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatrixGeometrySweep,
                         ::testing::Values(GeometryCase{16, 32, 16},
                                           GeometryCase{48, 64, 32},
                                           GeometryCase{36, 48, 24},
                                           GeometryCase{90, 128, 48}));

}  // namespace
}  // namespace mbir
