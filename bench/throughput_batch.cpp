// Batch reconstruction throughput over the multi-device scheduler.
//
// Reconstructs a suite of independent cases through sched::BatchScheduler at
// 1, 2, ... --max-devices simulated devices and reports, per device count:
// real host throughput (jobs/host-second), modeled device-seconds per job,
// modeled makespan (batch completion on the simulated hardware) and its
// speedup over one device, and the modeled queue-wait distribution. The
// container this repo is usually verified on has one core, so the *modeled*
// columns are the meaningful scaling signal; host numbers track simulator
// cost. Also asserts the scheduler's determinism contract: every device
// count must produce bit-identical images to the single-device run
// (exit code 1 otherwise).
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/hash.h"
#include "core/timer.h"
#include "sched/scheduler.h"

using namespace mbir;
using namespace mbir::bench;

namespace {

// FNV-1a over the raw float bits: equal hash <=> bit-identical image.
std::uint64_t imageHash(const Image2D& img) { return fnv1a64(img.flat()); }

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("max-devices", "largest simulated device count swept", "4");
  args.describe("race-check",
                "1 = device-semantics race checking on every launch "
                "(fatal on diagnosis); for overhead A/B runs", "0");
  auto ctx = BenchContext::fromCli(
      args, "Batch throughput: a job suite across 1..D simulated devices.", 8);
  if (!ctx) return 0;
  const int max_devices = args.getInt("max-devices", 4);
  const bool race_check = args.getInt("race-check", 0) != 0;

  // Build the job set once: one GPU-ICD reconstruction per suite case, at
  // the paper's Table-1 tunables. Problems/goldens are borrowed by every
  // scheduler run, so keep them alive for the whole sweep.
  std::vector<OwnedProblem> problems;
  std::vector<Image2D> goldens;
  problems.reserve(std::size_t(ctx->num_cases));
  goldens.reserve(std::size_t(ctx->num_cases));
  for (int i = 0; i < ctx->num_cases; ++i) {
    problems.push_back(ctx->makeCase(i));
    goldens.push_back(computeGolden(problems.back(), ctx->golden_equits));
  }
  RunConfig job_cfg;
  job_cfg.algorithm = Algorithm::kGpuIcd;
  job_cfg.gpu.tunables = paperTunables();
  job_cfg.gpu.race_check = {.enabled = race_check, .throw_on_race = race_check};
  if (race_check) std::printf("[bench] race checking ON (fatal)\n");

  AsciiTable t({"devices", "jobs", "host wall (s)", "jobs/host-s",
                "modeled s/job", "modeled makespan (s)", "makespan speedup",
                "queue wait mean/max (s)"});
  std::vector<std::pair<std::string, double>> numbers;
  std::vector<std::uint64_t> baseline_hashes;
  double makespan_d1 = 0.0;
  bool deterministic = true;

  WallTimer wall;
  for (int devices = 1; devices <= max_devices; devices *= 2) {
    sched::SchedulerOptions opt;
    opt.num_devices = devices;
    sched::BatchScheduler scheduler(opt);
    for (int i = 0; i < ctx->num_cases; ++i)
      scheduler.submit(problems[std::size_t(i)], goldens[std::size_t(i)],
                       job_cfg, "case" + std::to_string(i));
    const sched::BatchReport& rep = scheduler.runAll();

    for (int i = 0; i < ctx->num_cases; ++i) {
      const std::uint64_t h =
          imageHash(scheduler.result(i).run.image);
      if (devices == 1) {
        baseline_hashes.push_back(h);
      } else if (h != baseline_hashes[std::size_t(i)]) {
        deterministic = false;
        std::printf("[bench] DETERMINISM VIOLATION: job %d differs at %d "
                    "devices\n", i, devices);
      }
    }
    if (devices == 1) makespan_d1 = rep.makespan_modeled_s;

    t.addRow({std::to_string(devices), std::to_string(rep.jobs_total),
              AsciiTable::fmt(rep.host_seconds, 2),
              AsciiTable::fmt(rep.jobs_per_host_second, 2),
              AsciiTable::fmt(rep.modeled_device_seconds_per_job, 4),
              AsciiTable::fmt(rep.makespan_modeled_s, 4),
              AsciiTable::fmt(makespan_d1 / rep.makespan_modeled_s, 2),
              AsciiTable::fmt(rep.queue_wait_mean_s, 4) + " / " +
                  AsciiTable::fmt(rep.queue_wait_max_s, 4)});
    const std::string prefix = "d" + std::to_string(devices) + "_";
    numbers.emplace_back(prefix + "jobs_per_host_second",
                         rep.jobs_per_host_second);
    numbers.emplace_back(prefix + "modeled_device_seconds_per_job",
                         rep.modeled_device_seconds_per_job);
    numbers.emplace_back(prefix + "makespan_modeled_s", rep.makespan_modeled_s);
    numbers.emplace_back(prefix + "queue_wait_mean_s", rep.queue_wait_mean_s);
    std::printf("[bench] %d device(s): %d jobs, makespan %.4fs modeled, "
                "%.2f jobs/host-s\n",
                devices, rep.jobs_total, rep.makespan_modeled_s,
                rep.jobs_per_host_second);
  }
  numbers.emplace_back("deterministic_across_device_counts",
                       deterministic ? 1.0 : 0.0);

  emit(t, "throughput_batch", wall.seconds(), ctx.get(), numbers);
  if (!deterministic) {
    std::printf("FAILED: results not bit-identical across device counts\n");
    return 1;
  }
  return 0;
}
