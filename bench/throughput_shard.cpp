// Single-job multi-device slab-sharding throughput (DESIGN.md §13).
//
// Reconstructs one paper-scale case through shard::reconstructSharded with
// a fixed slab plan, sweeping the device count 1..--max-devices (same plan,
// so every run must be bit-identical — the shard determinism contract) and
// then the halo width at the largest device count. Reports, per
// configuration: modeled compute / communication / total seconds, the
// communication overhead fraction, and the modeled speedup over one
// device. Exits 1 if any device count produces different image bits or the
// largest device count speeds up by less than 1.5x.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/hash.h"
#include "core/timer.h"
#include "shard/shard_job.h"

using namespace mbir;
using namespace mbir::bench;

namespace {

std::uint64_t imageHash(const Image2D& img) { return fnv1a64(img.flat()); }

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("max-devices", "largest simulated device count swept", "4");
  args.describe("slabs", "row-slabs in the shard plan", "4");
  args.describe("max-halo", "largest halo width swept at max devices", "2");
  args.describe("race-check",
                "1 = device-semantics race checking on every launch "
                "(fatal on diagnosis)", "0");
  auto ctx = BenchContext::fromCli(
      args, "Sharded throughput: one job across 1..D devices + halo sweep.");
  if (!ctx) return 0;
  const int max_devices = args.getInt("max-devices", 4);
  const int slabs = args.getInt("slabs", 4);
  const int max_halo = args.getInt("max-halo", 2);
  const bool race_check = args.getInt("race-check", 0) != 0;

  const OwnedProblem problem = ctx->representativeCase();
  const Image2D golden = computeGolden(problem, ctx->golden_equits);
  const int n = problem.geometry().image_size;

  shard::ShardConfig base;
  base.base.algorithm = Algorithm::kGpuIcd;
  base.base.gpu.tunables = paperTunables();
  base.base.gpu.race_check = {.enabled = race_check,
                              .throw_on_race = race_check};
  if (race_check) std::printf("[bench] race checking ON (fatal)\n");

  AsciiTable t({"devices", "slabs", "halo", "iters", "equits", "compute (s)",
                "comm (s)", "comm ovh", "modeled (s)", "speedup", "RMSE (HU)"});
  std::vector<std::pair<std::string, double>> numbers;
  bool deterministic = true;
  double modeled_d1 = 0.0;
  double speedup_max_d = 0.0;
  std::uint64_t hash_d1 = 0;

  const auto run_one = [&](int devices, int halo, const std::string& tag) {
    shard::ShardConfig cfg = base;
    cfg.plan = shard::makeShardPlan(n, slabs, halo);
    cfg.devices = devices;
    const shard::ShardRunResult r = reconstructSharded(problem, golden, cfg);
    const double total = r.shard.modeled_seconds;
    const double ovh = total > 0.0 ? r.shard.comm_seconds / total : 0.0;
    if (devices == 1 && halo == 1) {
      modeled_d1 = total;
      hash_d1 = imageHash(r.run.image);
    } else if (halo == 1 && imageHash(r.run.image) != hash_d1) {
      deterministic = false;
      std::printf("[bench] DETERMINISM VIOLATION: image differs at %d "
                  "devices\n", devices);
    }
    const double speedup = total > 0.0 ? modeled_d1 / total : 0.0;
    if (devices == max_devices && halo == 1) speedup_max_d = speedup;
    t.addRow({std::to_string(devices), std::to_string(slabs),
              std::to_string(halo), std::to_string(r.shard.iterations),
              AsciiTable::fmt(r.run.equits, 2),
              AsciiTable::fmt(r.shard.compute_seconds, 4),
              AsciiTable::fmt(r.shard.comm_seconds, 4),
              AsciiTable::fmt(ovh, 4), AsciiTable::fmt(total, 4),
              AsciiTable::fmt(speedup, 2),
              AsciiTable::fmt(r.run.final_rmse_hu, 2)});
    numbers.emplace_back(tag + "_modeled_seconds", total);
    numbers.emplace_back(tag + "_compute_seconds", r.shard.compute_seconds);
    numbers.emplace_back(tag + "_comm_seconds", r.shard.comm_seconds);
    numbers.emplace_back(tag + "_comm_overhead", ovh);
    numbers.emplace_back(tag + "_speedup", speedup);
    std::printf("[bench] D=%d halo=%d: modeled %.4fs (comm %.1f%%), "
                "speedup %.2fx, RMSE %.2f HU\n",
                devices, halo, total, 100.0 * ovh, speedup,
                r.run.final_rmse_hu);
  };

  WallTimer wall;
  // Device sweep at halo 1: the determinism contract says same plan ->
  // same bits at every device count, only the modeled clock moves.
  for (int devices = 1; devices <= max_devices; devices *= 2)
    run_one(devices, 1, std::string("d") + std::to_string(devices));
  // Halo sweep at the largest device count (different plans -> different
  // bits, legitimately: the window math changes).
  for (int halo = 0; halo <= max_halo; ++halo) {
    if (halo == 1) continue;  // identical to the d<max> run above
    run_one(max_devices, halo, std::string("halo") + std::to_string(halo));
  }

  numbers.emplace_back("deterministic_across_device_counts",
                       deterministic ? 1.0 : 0.0);
  emit(t, "throughput_shard", wall.seconds(), ctx.get(), numbers);
  if (!deterministic) {
    std::printf("FAILED: results not bit-identical across device counts\n");
    return 1;
  }
  if (speedup_max_d < 1.5) {
    std::printf("FAILED: %dx-device modeled speedup %.2f < 1.5\n", max_devices,
                speedup_max_d);
    return 1;
  }
  return 0;
}
