// Table 3 — slowdown when turning each GPU-specific optimization off, plus
// the achieved-bandwidth summary of §5.3.
//
// Paper slowdowns (each flag off, others on):
//   reading sinogram as double       1.053x
//   variables in shared memory       1.124x
//   intra-SV parallelism             6.251x
//   dynamic voxel distribution       1.064x
//   batch-size threshold             1.099x
// Paper bandwidths: tex 702 GB/s, L2 472, smem 456, dram 152; total 1802
// GB/s = 5.36x the Titan X's 336 GB/s device memory peak.
#include <cstdio>

#include "bench_common.h"
#include "gsim/timing.h"

using namespace mbir;
using namespace mbir::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  auto ctx = BenchContext::fromCli(
      args, "Table 3: slowdown with individual GPU optimizations disabled.");
  if (!ctx) return 0;

  const OwnedProblem problem = ctx->representativeCase();
  const Image2D golden = computeGolden(problem, ctx->golden_equits);

  const RunResult base = runGpu(problem, golden, paperTunables());
  std::printf("baseline (all optimizations on): %.4f s, %.1f equits\n",
              base.modeled_seconds, base.equits);

  struct Ablation {
    const char* name;
    void (*off)(OptimFlags&);
    const char* paper;
  };
  const Ablation ablations[] = {
      {"Reading sinogram as double",
       [](OptimFlags& f) { f.read_svb_as_double = false; }, "1.053x"},
      {"Placing variables in shared memory",
       [](OptimFlags& f) { f.spill_registers_to_smem = false; }, "1.124x"},
      {"Exploiting intra-SV parallelism",
       [](OptimFlags& f) { f.exploit_intra_sv = false; }, "6.251x"},
      {"Dynamic voxel distribution",
       [](OptimFlags& f) { f.dynamic_voxel_distribution = false; }, "1.064x"},
      // NOTE: the threshold mechanism needs the paper's 289-SV grid to
      // matter (checkerboard groups much larger than BATCH_SIZE/4); at the
      // reduced default grid it is essentially inactive, so expect ~1.0x
      // here (see EXPERIMENTS.md).
      {"Setting threshold for batch sizes",
       [](OptimFlags& f) { f.batch_threshold = false; }, "1.099x (needs paper-scale grid)"},
  };

  AsciiTable t({"optimization turned off", "modeled slowdown", "equits",
                "paper slowdown"});
  for (const Ablation& a : ablations) {
    OptimFlags flags;
    a.off(flags);
    const RunResult r = runGpu(problem, golden, paperTunables(), flags);
    t.addRow({a.name, AsciiTable::fmt(r.modeled_seconds / base.modeled_seconds, 3) + "x",
              AsciiTable::fmt(r.equits, 1), a.paper});
  }
  emit(t, "table3_optimizations", -1.0, ctx.get());

  const auto bw = gsim::bandwidthReport(base.gpu_stats->kernel_stats,
                                        base.modeled_seconds);
  AsciiTable b({"path", "achieved GB/s", "paper GB/s"});
  b.addRow({"unified L1/texture", AsciiTable::fmt(bw.tex_gbs, 0), "702"});
  b.addRow({"L2", AsciiTable::fmt(bw.l2_gbs, 0), "472 (double reads)"});
  b.addRow({"shared memory", AsciiTable::fmt(bw.smem_gbs, 0), "456"});
  b.addRow({"device memory", AsciiTable::fmt(bw.dram_gbs, 0), "152"});
  b.addRow({"total", AsciiTable::fmt(bw.total_gbs, 0),
            "1802 (5.36x of the 336 GB/s peak)"});
  emit(b, "table3_bandwidths", -1.0, ctx.get());
  std::printf("total/device-peak ratio: %.2fx (paper: 5.36x)\n",
              bw.total_gbs / 336.0);
  return 0;
}
