// Table 1 — overall performance comparison of sequential ICD, PSV-ICD (CPU)
// and GPU-ICD over a suite of test cases.
//
// Reproduces: mean execution time, mean speedup over sequential ICD (and
// GPU over PSV), std-dev of execution time, SV side used, average equits to
// converge (RMSE < 10 HU vs 40-equit golden), and time per equit.
//
// Paper (512^2, 720 views, 1024 channels, 3200 cases, Imatron C-300 data):
//   PSV-ICD : mean 1.801 s, 138.26x over seq, sd 0.535, side 13, 4.8 equits,
//             0.41 s/equit
//   GPU-ICD : mean 0.407 s, 611.79x over seq (4.43x over PSV), sd 0.083,
//             side 33, 5.9 equits, 0.07 s/equit
// Here: scaled geometry + synthetic baggage suite (DESIGN.md §1); the shape
// (ordering, roughly the factors) is the reproduction target.
#include <cstdio>

#include "bench_common.h"
#include "core/stats.h"
#include "core/timer.h"

using namespace mbir;
using namespace mbir::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  auto ctx = BenchContext::fromCli(
      args, "Table 1: Sequential ICD vs PSV-ICD vs GPU-ICD over a case suite.", 12);
  if (!ctx) return 0;

  RunningStats seq_time, psv_time, gpu_time;
  RunningStats seq_host, psv_host, gpu_host;
  RunningStats psv_speedup, gpu_speedup, gpu_over_psv;
  RunningStats seq_equits, psv_equits, gpu_equits;
  RunningStats psv_tpe, gpu_tpe, seq_tpe;
  int converged = 0;
  std::size_t cache_hits = 0, cache_misses = 0;

  WallTimer wall;
  for (int i = 0; i < ctx->num_cases; ++i) {
    const OwnedProblem problem = ctx->makeCase(i);
    const Image2D golden = computeGolden(problem, ctx->golden_equits);

    RunConfig cfg;
    cfg.algorithm = Algorithm::kSequentialIcd;
    const RunResult seq = reconstruct(problem, golden, cfg);
    cfg.algorithm = Algorithm::kPsvIcd;  // paper SV side 13
    cfg.psv.sv.sv_side = 13;
    const RunResult psv = reconstruct(problem, golden, cfg);
    const RunResult gpu = runGpu(problem, golden, paperTunables());

    if (seq.converged && psv.converged && gpu.converged) ++converged;

    seq_time.add(seq.modeled_seconds);
    psv_time.add(psv.modeled_seconds);
    gpu_time.add(gpu.modeled_seconds);
    seq_host.add(seq.host_seconds);
    psv_host.add(psv.host_seconds);
    gpu_host.add(gpu.host_seconds);
    psv_speedup.add(seq.modeled_seconds / psv.modeled_seconds);
    gpu_speedup.add(seq.modeled_seconds / gpu.modeled_seconds);
    gpu_over_psv.add(psv.modeled_seconds / gpu.modeled_seconds);
    seq_equits.add(seq.equits);
    psv_equits.add(psv.equits);
    gpu_equits.add(gpu.equits);
    seq_tpe.add(seq.modeled_seconds / seq.equits);
    psv_tpe.add(psv.modeled_seconds / psv.equits);
    gpu_tpe.add(gpu.modeled_seconds / gpu.equits);
    if (gpu.gpu_stats) {
      cache_hits += gpu.gpu_stats->chunk_cache_hits;
      cache_misses += gpu.gpu_stats->chunk_cache_misses;
    }

    std::printf("[case %2d] seq %.2fs/%.1feq  psv %.4fs/%.1feq  gpu %.4fs/%.1feq\n",
                i, seq.modeled_seconds, seq.equits, psv.modeled_seconds,
                psv.equits, gpu.modeled_seconds, gpu.equits);
  }

  AsciiTable t({"algorithm", "mean exec (s)", "geomean speedup vs seq",
                "sd exec (s)", "SV side", "avg equits", "time/equit (s)",
                "host wall (s)", "paper: speedup / equits / s-per-equit"});
  t.addRow({"Sequential ICD", AsciiTable::fmt(seq_time.mean(), 3), "1.00",
            AsciiTable::fmt(seq_time.stddev(), 3), "-",
            AsciiTable::fmt(seq_equits.mean(), 1),
            AsciiTable::fmt(seq_tpe.mean(), 3),
            AsciiTable::fmt(seq_host.mean(), 3), "1x / - / -"});
  t.addRow({"PSV-ICD (CPU)", AsciiTable::fmt(psv_time.mean(), 4),
            AsciiTable::fmt(psv_speedup.geomean(), 1),
            AsciiTable::fmt(psv_time.stddev(), 4), "13",
            AsciiTable::fmt(psv_equits.mean(), 1),
            AsciiTable::fmt(psv_tpe.mean(), 4),
            AsciiTable::fmt(psv_host.mean(), 3), "138.26x / 4.8 / 0.41"});
  t.addRow({"GPU-ICD", AsciiTable::fmt(gpu_time.mean(), 4),
            AsciiTable::fmt(gpu_speedup.geomean(), 1),
            AsciiTable::fmt(gpu_time.stddev(), 4), "33",
            AsciiTable::fmt(gpu_equits.mean(), 1),
            AsciiTable::fmt(gpu_tpe.mean(), 4),
            AsciiTable::fmt(gpu_host.mean(), 3), "611.79x / 5.9 / 0.07"});
  const double cache_lookups = double(cache_hits + cache_misses);
  const double cache_hit_rate =
      cache_lookups > 0 ? double(cache_hits) / cache_lookups : 0.0;
  emit(t, "table1_overall", wall.seconds(), ctx.get(),
       {{"gpu_over_psv_geomean", gpu_over_psv.geomean()},
        {"gpu_chunk_cache_hits", double(cache_hits)},
        {"gpu_chunk_cache_misses", double(cache_misses)},
        {"gpu_chunk_cache_hit_rate", cache_hit_rate},
        {"converged_cases", double(converged)}});

  std::printf(
      "GPU-ICD over PSV-ICD: %.2fx geomean (paper: 4.43x); "
      "PSV/GPU time-per-equit ratio %.2fx (paper: 5.86x)\n",
      gpu_over_psv.geomean(), psv_tpe.mean() / gpu_tpe.mean());
  std::printf("GPU chunk-plan cache: %zu hits / %zu misses (%.1f%% hit rate)\n",
              cache_hits, cache_misses, 100.0 * cache_hit_rate);
  std::printf("%d/%d cases converged below 10 HU; wall time %.1fs\n",
              converged, ctx->num_cases, wall.seconds());
  return converged == ctx->num_cases ? 0 : 1;
}
