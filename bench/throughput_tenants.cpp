// Multi-tenant service throughput: closed-loop load generation against a
// live svc::Server, measuring (a) weighted-fair dispatch across tenants and
// (b) the result cache's exact-hit serve latency.
//
// Three phases:
//   fifo   — the same offered load with every job in one tenant bucket:
//            weighted-fair queuing degenerates to the plain priority lane,
//            giving the aggregate-throughput baseline.
//   wfq    — two equally-aggressive tenants with weights --heavy-weight :
//            --light-weight. Per-tenant goodput comes from the drain
//            report's tenant summaries; the headline fairness metric is
//              max_i(goodput_i / weight_i) / min_i(goodput_i / weight_i)
//            (1.0 = perfectly weight-proportional service).
//   cache  — a result-cache-enabled server primed with one cold run, then
//            hammered with identical submits; every one must be served from
//            the cache without dispatching. Reports the client-observed
//            submit round-trip p50/p99 for those hits.
//
// Closed loop: every worker thread submits one job, waits for its result,
// then submits the next — offered load tracks service capacity, so the
// admission queue stays near its bound and the fair-queuing decision is
// actually exercised (admission rejects back off briefly and retry).
//
// Emits BENCH_throughput_tenants.json (schema gpumbir.bench/1); CI gates
// the fairness ratio, the wfq/fifo aggregate fraction and the cache-hit
// p99 against the committed baseline via bench_compare.py.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/timer.h"
#include "obs/obs.h"
#include "recon/case_library.h"
#include "store/cache.h"
#include "svc/client.h"
#include "svc/server.h"

using namespace mbir;
using namespace mbir::bench;

namespace {

struct LoadResult {
  int done = 0;
  int rejects = 0;
};

/// One closed-loop worker: submit → wait → repeat until the deadline.
void runWorker(std::uint16_t port, const std::string& tenant, int num_cases,
               std::chrono::steady_clock::time_point deadline,
               std::atomic<int>& done, std::atomic<int>& rejects) {
  svc::Client client(port);
  int i = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    svc::SubmitParams p;
    p.case_index = i++ % num_cases;
    p.tenant = tenant;
    p.name = tenant.empty() ? "job" + std::to_string(i)
                            : tenant + "-" + std::to_string(i);
    const svc::Client::SubmitResult out = client.submit(p);
    if (!out.accepted) {
      rejects.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    const svc::Client::JobInfo info = client.result(out.job_id);
    if (info.state == "done") done.fetch_add(1, std::memory_order_relaxed);
  }
}

struct PhaseStats {
  double host_s = 0.0;
  int rejects = 0;
  svc::SvcReport report;
};

/// Run one load phase: `loads` = (tenant label, worker threads) pairs.
PhaseStats runPhase(svc::ServerOptions opt, svc::JobSource& source,
                    const std::vector<std::pair<std::string, int>>& loads,
                    int num_cases, double duration_s) {
  svc::Server server(std::move(opt), source);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(int(duration_s * 1000.0));
  std::atomic<int> done{0}, rejects{0};
  std::vector<std::thread> workers;
  const WallTimer wall;
  for (const auto& [tenant, threads] : loads)
    for (int t = 0; t < threads; ++t)
      workers.emplace_back(runWorker, server.port(), tenant, num_cases,
                           deadline, std::ref(done), std::ref(rejects));
  for (std::thread& w : workers) w.join();
  PhaseStats out;
  out.report = server.drainAndReport();
  out.host_s = wall.seconds();
  out.rejects = rejects.load();
  server.stop();
  return out;
}

double tenantDone(const svc::SvcReport& rep, const std::string& tenant) {
  for (const svc::SvcReport::TenantSummary& t : rep.tenants)
    if (t.tenant == tenant) return double(t.jobs_done);
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("devices", "simulated device count", "2");
  args.describe("queue-cap", "admission queue bound", "4");
  args.describe("duration-s", "closed-loop load duration per phase", "4");
  args.describe("threads", "worker threads per tenant", "3");
  args.describe("heavy-weight", "fair-queuing weight of the heavy tenant",
                "4");
  args.describe("light-weight", "fair-queuing weight of the light tenant",
                "1");
  args.describe("cache-hits", "duplicate submits in the cache phase", "16");
  auto ctx = BenchContext::fromCli(
      args, "Weighted-fair multi-tenant service throughput + cache hits.", 2);
  if (!ctx) return 0;
  const int devices = args.getInt("devices", 2);
  const int queue_cap = args.getInt("queue-cap", 4);
  const double duration_s = args.getDouble("duration-s", 4.0);
  const int threads = args.getInt("threads", 3);
  const double heavy_w = args.getDouble("heavy-weight", 4.0);
  const double light_w = args.getDouble("light-weight", 1.0);
  const int cache_hits_n = args.getInt("cache-hits", 16);

  CaseLibrary library(ctx->cfg, ctx->golden_equits);
  svc::CaseLibraryJobSource source(library);
  for (int i = 0; i < ctx->num_cases; ++i) library.get(i);  // pre-build

  auto baseOptions = [&] {
    svc::ServerOptions opt;
    opt.dispatch.num_devices = devices;
    opt.dispatch.queue_capacity = queue_cap;
    opt.base_config.algorithm = Algorithm::kGpuIcd;
    opt.base_config.gpu.tunables = paperTunables();
    opt.base_config.max_equits = 4.0;
    return opt;
  };

  AsciiTable t({"phase", "jobs done", "rejects", "host wall (s)",
                "jobs/host-s", "fairness (weighted max/min)"});
  std::vector<std::pair<std::string, double>> numbers;
  const WallTimer wall;

  // -- Phase 1: FIFO baseline (one tenant bucket, same total offered load)
  const PhaseStats fifo =
      runPhase(baseOptions(), source, {{"", 2 * threads}}, ctx->num_cases,
               duration_s);
  const double fifo_rate =
      fifo.host_s > 0.0 ? double(fifo.report.jobs_done) / fifo.host_s : 0.0;
  t.addRow({"fifo", std::to_string(fifo.report.jobs_done),
            std::to_string(fifo.rejects), AsciiTable::fmt(fifo.host_s, 2),
            AsciiTable::fmt(fifo_rate, 2), "-"});
  numbers.emplace_back("fifo_jobs_per_host_second", fifo_rate);
  std::printf("[bench] fifo: %llu done, %.2f jobs/host-s\n",
              (unsigned long long)fifo.report.jobs_done, fifo_rate);

  // -- Phase 2: weighted-fair queuing, two equally-aggressive tenants
  svc::ServerOptions wfq_opt = baseOptions();
  wfq_opt.dispatch.tenant_weights["heavy"] = heavy_w;
  wfq_opt.dispatch.tenant_weights["light"] = light_w;
  const PhaseStats wfq =
      runPhase(std::move(wfq_opt), source,
               {{"heavy", threads}, {"light", threads}}, ctx->num_cases,
               duration_s);
  const double wfq_rate =
      wfq.host_s > 0.0 ? double(wfq.report.jobs_done) / wfq.host_s : 0.0;
  const double heavy_done = tenantDone(wfq.report, "heavy");
  const double light_done = tenantDone(wfq.report, "light");
  const double heavy_share = heavy_done / heavy_w;
  const double light_share = light_done / light_w;
  const double fairness =
      heavy_share > 0.0 && light_share > 0.0
          ? std::max(heavy_share, light_share) /
                std::min(heavy_share, light_share)
          : 0.0;
  t.addRow({"wfq " + AsciiTable::fmt(heavy_w, 0) + ":" +
                AsciiTable::fmt(light_w, 0),
            std::to_string(wfq.report.jobs_done), std::to_string(wfq.rejects),
            AsciiTable::fmt(wfq.host_s, 2), AsciiTable::fmt(wfq_rate, 2),
            AsciiTable::fmt(fairness, 2)});
  numbers.emplace_back("wfq_jobs_per_host_second", wfq_rate);
  numbers.emplace_back("wfq_heavy_jobs_done", heavy_done);
  numbers.emplace_back("wfq_light_jobs_done", light_done);
  numbers.emplace_back("wfq_weighted_fairness_ratio", fairness);
  numbers.emplace_back("wfq_fifo_throughput_frac",
                       fifo_rate > 0.0 ? wfq_rate / fifo_rate : 0.0);
  std::printf("[bench] wfq %.0f:%.0f: heavy %.0f / light %.0f done, "
              "weighted fairness %.2f, %.2f jobs/host-s (%.0f%% of fifo)\n",
              heavy_w, light_w, heavy_done, light_done, fairness, wfq_rate,
              fifo_rate > 0.0 ? 100.0 * wfq_rate / fifo_rate : 0.0);

  // -- Phase 3: result-cache exact hits, client-observed serve latency
  char cache_dir[] = "/tmp/gpumbir_tenants_cache_XXXXXX";
  if (!::mkdtemp(cache_dir)) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  {
    store::ResultCache cache(cache_dir, 8);
    svc::ServerOptions opt = baseOptions();
    opt.cache = &cache;
    svc::Server server(std::move(opt), source);
    svc::Client client(server.port());

    svc::SubmitParams p;
    p.case_index = 0;
    p.name = "prime";
    const svc::Client::SubmitResult prime = client.submit(p);
    if (!prime.accepted || prime.cache_hit) {
      std::fprintf(stderr, "cache phase: priming submit went wrong\n");
      return 1;
    }
    client.result(prime.job_id);

    int hits = 0;
    std::vector<double> latencies;
    for (int i = 0; i < cache_hits_n; ++i) {
      p.name = "dup" + std::to_string(i);
      const WallTimer rt;
      const svc::Client::SubmitResult out = client.submit(p);
      const double s = rt.seconds();
      if (out.accepted && out.cache_hit) {
        ++hits;
        latencies.push_back(s);
      }
    }
    const svc::SvcReport& rep = server.drainAndReport();
    server.stop();

    std::sort(latencies.begin(), latencies.end());
    auto quantile = [&](double q) {
      if (latencies.empty()) return 0.0;
      const std::size_t idx = std::min(
          latencies.size() - 1, std::size_t(q * double(latencies.size())));
      return latencies[idx];
    };
    const double hit_rate =
        cache_hits_n > 0 ? double(hits) / double(cache_hits_n) : 0.0;
    t.addRow({"cache", std::to_string(rep.jobs_done), "0",
              AsciiTable::fmt(quantile(0.99), 5) + " p99 hit",
              AsciiTable::fmt(hit_rate * 100.0, 0) + "% hits", "-"});
    numbers.emplace_back("cache_hit_rate", hit_rate);
    numbers.emplace_back("cache_hits", double(rep.cache_hits));
    numbers.emplace_back("cache_hit_submit_p50_s", quantile(0.50));
    numbers.emplace_back("cache_hit_submit_p99_s", quantile(0.99));
    std::printf("[bench] cache: %d/%d exact hits, serve p50 %.5fs p99 "
                "%.5fs\n",
                hits, cache_hits_n, quantile(0.50), quantile(0.99));
  }

  emit(t, "throughput_tenants", wall.seconds(), ctx.get(), numbers);
  return 0;
}
