// Fig. 7b — threadblocks per SV (exploited intra-SV parallelism):
// performance improves with more blocks per SV and saturates around 32.
#include <cstdio>

#include "bench_common.h"

using namespace mbir;
using namespace mbir::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  auto ctx = BenchContext::fromCli(
      args, "Fig. 7b: threadblocks per SV (intra-SV parallelism degree).");
  if (!ctx) return 0;

  const OwnedProblem problem = ctx->representativeCase();
  const Image2D golden = computeGolden(problem, ctx->golden_equits);

  AsciiTable t({"threadblocks/SV", "modeled time (s)", "equits",
                "speedup vs 1"});
  double t1 = 0.0;
  for (int tbs : {1, 2, 4, 8, 16, 32, 40, 64}) {
    GpuTunables tn = paperTunables();
    tn.threadblocks_per_sv = tbs;
    const RunResult r = runGpu(problem, golden, tn);
    if (tbs == 1) t1 = r.modeled_seconds;
    t.addRow({AsciiTable::fmt(tbs), AsciiTable::fmt(r.modeled_seconds, 4),
              AsciiTable::fmt(r.equits, 2),
              AsciiTable::fmt(t1 / r.modeled_seconds, 2) + "x"});
  }
  emit(t, "fig7b_tb_per_sv", -1.0, ctx.get());
  std::printf("(paper: performance saturates after ~32 threadblocks/SV)\n");
  return 0;
}
