// Fig. 7a — SuperVoxel side length: execution time (U-shape, paper minimum
// at 33), equits-to-converge (rising with side), and achieved L2 throughput
// annotations.
#include <cstdio>

#include "bench_common.h"
#include "gsim/timing.h"

using namespace mbir;
using namespace mbir::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  auto ctx = BenchContext::fromCli(
      args, "Fig. 7a: SuperVoxel side length vs time / equits / L2 GB/s.");
  if (!ctx) return 0;

  const OwnedProblem problem = ctx->representativeCase();
  const Image2D golden = computeGolden(problem, ctx->golden_equits);

  AsciiTable t({"SV side", "modeled time (s)", "equits", "L2 GB/s",
                "time/equit (s)"});
  const int sides[] = {9, 17, 25, 33, 41, 49};
  double best_time = 1e30;
  int best_side = 0;
  for (int side : sides) {
    GpuTunables tn = paperTunables();
    tn.sv.sv_side = side;
    const RunResult r = runGpu(problem, golden, tn);
    const auto bw =
        gsim::bandwidthReport(r.gpu_stats->kernel_stats, r.modeled_seconds);
    if (r.modeled_seconds < best_time) {
      best_time = r.modeled_seconds;
      best_side = side;
    }
    t.addRow({AsciiTable::fmt(side), AsciiTable::fmt(r.modeled_seconds, 4),
              AsciiTable::fmt(r.equits, 2), AsciiTable::fmt(bw.l2_gbs, 0),
              AsciiTable::fmt(r.modeled_seconds / r.equits, 4)});
  }
  emit(t, "fig7a_sv_side", -1.0, ctx.get());
  std::printf("best side %d (paper: 33; small sides suffer atomic "
              "contention, large sides exceed L2 and converge slower)\n",
              best_side);
  return 0;
}
