// Online service throughput: open-loop job submission against a live
// svc::Server over loopback, swept across 1, 2, ... --max-devices simulated
// devices. Unlike throughput_batch (same jobs through the offline
// BatchScheduler), every job here crosses the wire protocol and the
// admission queue, so the measured numbers include the service's real
// control-plane costs: framing, admission, priority dispatch, status
// snapshots.
//
// Open loop: a submitter thread pushes jobs at the service as fast as
// admission allows (rejections back off briefly and retry — the queue bound
// is part of the system under test), with mixed priorities. Per device
// count the bench reports accepted jobs/host-second plus the p50/p99
// queue-wait and end-to-end latency distributions from the drain report,
// and p50/p95/p99 e2e latency from the service's own svc.job.e2e_host_s
// histogram (a fresh metrics recorder per sweep) — the same quantile path
// the live `stats` verb serves, so the bench exercises and gates it.
//
// Emits BENCH_throughput_service.json (schema gpumbir.bench/1).
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/signal.h"
#include "core/timer.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "recon/case_library.h"
#include "svc/client.h"
#include "svc/server.h"

using namespace mbir;
using namespace mbir::bench;

namespace {

/// Process CPU seconds (user + system, all threads) so each sweep can
/// report utilization = cpu / wall; > 1.0 means the pool kept multiple
/// cores busy.
double processCpuSeconds() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  const auto tv = [](const timeval& t) {
    return double(t.tv_sec) + 1e-6 * double(t.tv_usec);
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("max-devices", "largest simulated device count swept", "4");
  args.describe("jobs", "jobs submitted per device count", "12");
  args.describe("queue-cap", "admission queue bound", "4");
  auto ctx = BenchContext::fromCli(
      args, "Online service throughput across 1..D simulated devices.", 4);
  if (!ctx) return 0;
  const int max_devices = args.getInt("max-devices", 4);
  const int jobs_per_sweep = args.getInt("jobs", 12);
  const int queue_cap = args.getInt("queue-cap", 4);

  // Ctrl-C between sweeps exits cleanly with whatever was measured.
  ShutdownSignal& shutdown = ShutdownSignal::instance();

  CaseLibrary library(ctx->cfg, ctx->golden_equits);
  svc::CaseLibraryJobSource source(library);
  // Pre-build the cases so library construction cost stays out of the
  // measured window (the server would otherwise build lazily mid-sweep).
  for (int i = 0; i < ctx->num_cases; ++i) library.get(i);

  AsciiTable t({"devices", "jobs", "rejects", "host wall (s)", "jobs/host-s",
                "cpu util", "queue wait p50/p99 (s)", "e2e p50/p99 (s)",
                "modeled makespan (s)"});
  std::vector<std::pair<std::string, double>> numbers;

  WallTimer wall;
  for (int devices = 1; devices <= max_devices && !shutdown.requested();
       devices *= 2) {
    // Fresh per-sweep recorder: each device count gets its own histogram
    // state, so the quantiles below aren't polluted by earlier sweeps.
    obs::ObsConfig obs_cfg;
    obs_cfg.metrics = true;
    obs::Recorder recorder(obs_cfg);

    svc::ServerOptions opt;
    opt.dispatch.num_devices = devices;
    opt.dispatch.queue_capacity = queue_cap;
    opt.dispatch.recorder = &recorder;
    opt.base_config.algorithm = Algorithm::kGpuIcd;
    opt.base_config.gpu.tunables = paperTunables();
    opt.base_config.max_equits = 6.0;
    svc::Server server(opt, source);
    svc::Client client(server.port());

    // Open-loop submission: push until `jobs_per_sweep` jobs are admitted,
    // backing off briefly on admission rejects.
    std::uint64_t rejects = 0;
    std::vector<int> ids;
    const double sweep_cpu0 = processCpuSeconds();
    const WallTimer sweep_wall;
    for (int i = 0; int(ids.size()) < jobs_per_sweep; ++i) {
      svc::SubmitParams p;
      p.case_index = int(ids.size()) % ctx->num_cases;
      p.priority = i % 3;
      p.name = "bench" + std::to_string(i);
      const auto out = client.submit(p);
      if (out.accepted) {
        ids.push_back(out.job_id);
      } else {
        ++rejects;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    for (int id : ids) client.result(id);  // wait out the backlog
    const double host_s = sweep_wall.seconds();
    const double cpu_s = processCpuSeconds() - sweep_cpu0;
    const double cpu_util = host_s > 0.0 ? cpu_s / host_s : 0.0;

    const svc::SvcReport& rep = server.drainAndReport();
    server.stop();

    // The service's own latency histogram (what `reconctl stats` serves
    // live): estimated quantiles from the log-linear buckets, vs the exact
    // order statistics in the drain report above.
    const obs::Histogram::Snapshot e2e_hist =
        recorder.metrics().histogramSnapshot("svc.job.e2e_host_s");

    const double jobs_per_s = host_s > 0.0 ? jobs_per_sweep / host_s : 0.0;
    t.addRow({std::to_string(devices), std::to_string(jobs_per_sweep),
              std::to_string(rejects), AsciiTable::fmt(host_s, 2),
              AsciiTable::fmt(jobs_per_s, 2), AsciiTable::fmt(cpu_util, 2),
              AsciiTable::fmt(rep.queue_wait_host_s.p50, 4) + " / " +
                  AsciiTable::fmt(rep.queue_wait_host_s.p99, 4),
              AsciiTable::fmt(rep.e2e_host_s.p50, 4) + " / " +
                  AsciiTable::fmt(rep.e2e_host_s.p99, 4),
              AsciiTable::fmt(rep.makespan_modeled_s, 4)});
    const std::string prefix = "d" + std::to_string(devices) + "_";
    numbers.emplace_back(prefix + "jobs_per_host_second", jobs_per_s);
    numbers.emplace_back(prefix + "admission_rejects", double(rejects));
    numbers.emplace_back(prefix + "host_cpu_seconds", cpu_s);
    numbers.emplace_back(prefix + "host_cpu_utilization", cpu_util);
    numbers.emplace_back(prefix + "queue_wait_p50_s",
                         rep.queue_wait_host_s.p50);
    numbers.emplace_back(prefix + "queue_wait_p99_s",
                         rep.queue_wait_host_s.p99);
    numbers.emplace_back(prefix + "e2e_p50_s", rep.e2e_host_s.p50);
    numbers.emplace_back(prefix + "e2e_p95_s", rep.e2e_host_s.p95);
    numbers.emplace_back(prefix + "e2e_p99_s", rep.e2e_host_s.p99);
    numbers.emplace_back(prefix + "e2e_hist_p50_s", e2e_hist.quantile(0.50));
    numbers.emplace_back(prefix + "e2e_hist_p95_s", e2e_hist.quantile(0.95));
    numbers.emplace_back(prefix + "e2e_hist_p99_s", e2e_hist.quantile(0.99));
    numbers.emplace_back(prefix + "makespan_modeled_s",
                         rep.makespan_modeled_s);
    std::printf("[bench] %d device(s): %d jobs (%llu rejects), "
                "%.2f jobs/host-s, cpu util %.2f, e2e p99 %.4fs\n",
                devices, jobs_per_sweep, (unsigned long long)rejects,
                jobs_per_s, cpu_util, rep.e2e_host_s.p99);
  }

  emit(t, "throughput_service", wall.seconds(), ctx.get(), numbers);
  return 0;
}
