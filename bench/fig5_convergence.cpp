// Fig. 5 — convergence (RMSE vs golden, in HU) against wall-clock time for
// PSV-ICD and GPU-ICD on a representative image.
//
// Paper shape: GPU-ICD's curve drops below 10 HU several times faster than
// PSV-ICD's despite needing more equits.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"

using namespace mbir;
using namespace mbir::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  auto ctx = BenchContext::fromCli(
      args, "Fig. 5: RMSE-vs-time convergence of PSV-ICD and GPU-ICD.");
  if (!ctx) return 0;

  const OwnedProblem problem = ctx->representativeCase();
  const Image2D golden = computeGolden(problem, ctx->golden_equits);

  RunConfig cfg;
  cfg.algorithm = Algorithm::kPsvIcd;
  cfg.psv.sv.sv_side = 13;
  cfg.stop_rmse_hu = 2.0;  // run past the 10 HU criterion to show the tail
  cfg.max_equits = 20.0;
  const RunResult psv = reconstruct(problem, golden, cfg);

  cfg.algorithm = Algorithm::kGpuIcd;
  cfg.gpu.tunables = paperTunables();
  const RunResult gpu = reconstruct(problem, golden, cfg);

  AsciiTable t({"series", "point", "modeled time (s)", "equits", "RMSE (HU)"});
  auto add = [&](const char* name, const RunResult& r) {
    for (std::size_t i = 0; i < r.curve.size(); ++i)
      t.addRow({name, AsciiTable::fmt(int(i)),
                AsciiTable::fmt(r.curve[i].modeled_seconds, 5),
                AsciiTable::fmt(r.curve[i].equits, 2),
                AsciiTable::fmt(r.curve[i].rmse_hu, 2)});
  };
  add("PSV-ICD (CPU)", psv);
  add("GPU-ICD", gpu);
  emit(t, "fig5_convergence", -1.0, ctx.get());

  auto time_to_10hu = [](const RunResult& r) {
    for (const auto& pt : r.curve)
      if (pt.rmse_hu < 10.0) return pt.modeled_seconds;
    return -1.0;
  };
  const double tp = time_to_10hu(psv), tg = time_to_10hu(gpu);
  std::printf("time to 10 HU: PSV %.4fs, GPU %.4fs -> GPU %.2fx faster "
              "(paper Fig. 5: GPU converges several times faster)\n",
              tp, tg, tp > 0 && tg > 0 ? tp / tg : 0.0);
  return 0;
}
