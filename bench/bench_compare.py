#!/usr/bin/env python3
"""Compare two gpumbir bench reports (results/BENCH_*.json) metric by metric.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [options]

Both files must carry schema gpumbir.bench/1 (the `numbers` object is what
gets compared). Prints a delta table for every metric the two reports share,
then applies the regression gate to the *named* metrics:

  --metric NAME[:higher|:lower]   gate this metric (repeatable). `higher`
                                  means larger is better (throughput),
                                  `lower` means smaller is better (latency).
                                  Unsuffixed names default by pattern:
                                  *jobs_per*/*per_host_second* -> higher,
                                  *_s/*_seconds/*rejects* -> lower.
  --threshold FRAC                regression tolerance (default 0.10 = 10%).

Exit status: 0 when no gated metric regressed by more than the threshold,
1 when at least one did, 2 on usage/schema errors. Typical CI use:

  python3 bench/bench_compare.py results/BENCH_throughput_service.baseline.json \
      results/BENCH_throughput_service.json \
      --metric d4_jobs_per_host_second --metric d4_e2e_p99_s
"""

import argparse
import json
import sys


def load_numbers(path):
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    if doc.get("schema") != "gpumbir.bench/1":
        sys.exit(f"error: {path}: expected schema gpumbir.bench/1, "
                 f"got {doc.get('schema')!r}")
    numbers = doc.get("numbers")
    if not isinstance(numbers, dict):
        sys.exit(f"error: {path}: no 'numbers' object")
    return doc, numbers


def default_direction(name):
    lowered = name.lower()
    if "jobs_per" in lowered or "per_host_second" in lowered:
        return "higher"
    if lowered.endswith(("_s", "_seconds")) or "reject" in lowered:
        return "lower"
    return None


def parse_metric_arg(arg):
    if ":" in arg:
        name, direction = arg.rsplit(":", 1)
        if direction not in ("higher", "lower"):
            sys.exit(f"error: bad metric direction in {arg!r} "
                     "(expected :higher or :lower)")
        return name, direction
    direction = default_direction(arg)
    if direction is None:
        sys.exit(f"error: cannot infer direction for metric {arg!r}; "
                 "say NAME:higher or NAME:lower")
    return arg, direction


def regression_fraction(base, cur, direction):
    """How much worse `cur` is than `base`, as a fraction of base (>= 0)."""
    if base == 0:
        return 0.0 if cur == 0 else float("inf")
    if direction == "higher":
        return max(0.0, (base - cur) / abs(base))
    return max(0.0, (cur - base) / abs(base))


def main():
    ap = argparse.ArgumentParser(add_help=True)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--metric", action="append", default=[],
                    metavar="NAME[:higher|:lower]")
    ap.add_argument("--threshold", type=float, default=0.10)
    args = ap.parse_args()

    base_doc, base = load_numbers(args.baseline)
    cur_doc, cur = load_numbers(args.current)
    if base_doc.get("bench") != cur_doc.get("bench"):
        print(f"warning: comparing different benches "
              f"({base_doc.get('bench')!r} vs {cur_doc.get('bench')!r})",
              file=sys.stderr)

    shared = sorted(set(base) & set(cur))
    if shared:
        width = max(len(k) for k in shared)
        print(f"{'metric':<{width}}  {'baseline':>14}  {'current':>14}  delta")
        for key in shared:
            b, c = base[key], cur[key]
            delta = "n/a" if b == 0 else f"{(c - b) / abs(b):+8.1%}"
            print(f"{key:<{width}}  {b:>14.6g}  {c:>14.6g}  {delta}")
    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))
    if only_base:
        print(f"only in baseline: {', '.join(only_base)}", file=sys.stderr)
    if only_cur:
        print(f"only in current:  {', '.join(only_cur)}", file=sys.stderr)

    failed = False
    for arg in args.metric:
        name, direction = parse_metric_arg(arg)
        if name not in base or name not in cur:
            sys.exit(f"error: gated metric {name!r} missing from "
                     f"{'baseline' if name not in base else 'current'}")
        frac = regression_fraction(base[name], cur[name], direction)
        verdict = "REGRESSED" if frac > args.threshold else "ok"
        print(f"gate {name} ({direction} is better): "
              f"{frac:.1%} worse than baseline -> {verdict}")
        failed |= frac > args.threshold
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
