// Microbenchmarks (google-benchmark) for the substrate operations — not a
// paper table, but the engineering-hygiene numbers a user tuning this
// library on their own hardware needs: voxel update cost, SVB gather,
// chunk-table construction, projection, quantization.
#include <benchmark/benchmark.h>

#include "geom/fbp.h"
#include "geom/projector.h"
#include "icd/voxel_update.h"
#include "phantom/baggage.h"
#include "phantom/rasterize.h"
#include "recon/suite.h"
#include "sv/chunks.h"
#include "sv/svb.h"

namespace mbir {
namespace {

const Suite& microSuite() {
  static const Suite suite = [] {
    SuiteConfig cfg;
    cfg.geometry = ParallelBeamGeometry{.num_views = 96,
                                        .num_channels = 128,
                                        .image_size = 64,
                                        .pixel_size_mm = 0.8,
                                        .channel_spacing_mm = 0.5};
    return Suite(cfg);
  }();
  return suite;
}

struct MicroCase {
  OwnedProblem problem;
  Image2D x;
  Sinogram e;
  MicroCase()
      : problem(microSuite().makeCase(0)),
        x(problem.fbpInitialImage()),
        e(problem.initialError(x)) {}
};

MicroCase& microCase() {
  static MicroCase c;
  return c;
}

void BM_VoxelTheta(benchmark::State& state) {
  auto& c = microCase();
  const Problem p = c.problem.view();
  std::size_t voxel = 0;
  for (auto _ : state) {
    voxel = (voxel + 257) % p.A.numVoxels();
    benchmark::DoNotOptimize(computeThetaGlobal(p.A, c.e, p.weights, voxel));
  }
}
BENCHMARK(BM_VoxelTheta);

void BM_VoxelUpdateFull(benchmark::State& state) {
  auto& c = microCase();
  const Problem p = c.problem.view();
  int i = 0;
  for (auto _ : state) {
    const int row = 8 + (i % 48);
    const int col = 8 + ((i / 48) % 48);
    ++i;
    benchmark::DoNotOptimize(updateVoxelGlobal(p, c.x, c.e, row, col, false));
  }
}
BENCHMARK(BM_VoxelUpdateFull);

void BM_ForwardProject(benchmark::State& state) {
  auto& c = microCase();
  for (auto _ : state)
    benchmark::DoNotOptimize(forwardProject(c.problem.matrix(), c.x));
}
BENCHMARK(BM_ForwardProject);

void BM_Fbp(benchmark::State& state) {
  auto& c = microCase();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        fbpReconstruct(c.problem.scan().y, c.problem.geometry()));
}
BENCHMARK(BM_Fbp);

void BM_SvbGather(benchmark::State& state) {
  auto& c = microCase();
  const SvGrid grid(c.problem.geometry().image_size,
                    {.sv_side = 16, .boundary_overlap = 1});
  const SvbPlan plan(c.problem.geometry(), grid.sv(grid.count() / 2));
  Svb svb(plan, SvbLayout::kPadded);
  for (auto _ : state) {
    svb.gather(c.e);
    benchmark::DoNotOptimize(svb.raw().data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(plan.paddedSize() * sizeof(float)));
}
BENCHMARK(BM_SvbGather);

void BM_ChunkPlanBuild(benchmark::State& state) {
  auto& c = microCase();
  const SvGrid grid(c.problem.geometry().image_size,
                    {.sv_side = 16, .boundary_overlap = 1});
  const bool quantize = state.range(0) != 0;
  for (auto _ : state) {
    SvbPlan plan(c.problem.geometry(), grid.sv(grid.count() / 2));
    ChunkPlan cp(c.problem.matrix(), plan,
                 {.chunk_width = 32, .quantize = quantize});
    benchmark::DoNotOptimize(cp.numChunks());
  }
}
BENCHMARK(BM_ChunkPlanBuild)->Arg(0)->Arg(1);

void BM_BaggagePhantomGen(benchmark::State& state) {
  int i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(makeBaggagePhantom(1, ++i));
}
BENCHMARK(BM_BaggagePhantomGen);

void BM_Rasterize(benchmark::State& state) {
  const auto phantom = makeBaggagePhantom(1, 0);
  auto& c = microCase();
  for (auto _ : state)
    benchmark::DoNotOptimize(rasterize(phantom, c.problem.geometry()));
}
BENCHMARK(BM_Rasterize);

}  // namespace
}  // namespace mbir

BENCHMARK_MAIN();
