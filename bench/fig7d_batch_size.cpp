// Fig. 7d — SVs per kernel launch (BATCH_SIZE): small batches pay launch
// overhead; large batches coarsen the error-sinogram update granularity and
// slow convergence. Also runs the extra ablation DESIGN.md §5 calls out:
// the 25% (GPU) vs 20% (PSV) SV selection fraction.
#include <cstdio>

#include "bench_common.h"

using namespace mbir;
using namespace mbir::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  auto ctx = BenchContext::fromCli(
      args, "Fig. 7d: SVs per batch (kernel launch granularity).");
  if (!ctx) return 0;

  const OwnedProblem problem = ctx->representativeCase();
  const Image2D golden = computeGolden(problem, ctx->golden_equits);

  AsciiTable t({"SVs/batch", "modeled time (s)", "equits",
                "kernel launches"});
  for (int batch : {1, 2, 4, 8, 16, 32, 64, 128}) {
    GpuTunables tn = paperTunables();
    tn.svs_per_batch = batch;
    const RunResult r = runGpu(problem, golden, tn);
    t.addRow({AsciiTable::fmt(batch), AsciiTable::fmt(r.modeled_seconds, 4),
              AsciiTable::fmt(r.equits, 2),
              AsciiTable::fmt(r.gpu_stats->kernels_launched)});
  }
  emit(t, "fig7d_batch_size", -1.0, ctx.get());

  // Ablation: SV selection fraction (paper: GPU-ICD raises PSV-ICD's 20%
  // to 25% to keep the checkerboard groups populated).
  AsciiTable f({"SV fraction", "modeled time (s)", "equits",
                "batches skipped by threshold"});
  for (double frac : {0.15, 0.20, 0.25, 0.35, 0.50}) {
    GpuTunables tn = paperTunables();
    tn.sv_fraction = frac;
    const RunResult r = runGpu(problem, golden, tn);
    f.addRow({AsciiTable::fmt(frac, 2), AsciiTable::fmt(r.modeled_seconds, 4),
              AsciiTable::fmt(r.equits, 2),
              AsciiTable::fmt(r.gpu_stats->batches_skipped_by_threshold)});
  }
  emit(f, "fig7d_sv_fraction", -1.0, ctx.get());
  std::printf("(paper: too-small batches pay launch overhead; too-large "
              "batches slow algorithmic convergence)\n");
  return 0;
}
