// Fig. 6 — speedup of the §4.1 layout-transformed kernel over the naive
// (default-layout) kernel, as a function of chunk width.
//
// Paper shape: peak ~2.1x at W = 32; small widths lose coalescing, large
// widths pay prohibitive padding; warp-size multiples beat non-multiples.
#include <cstdio>

#include "bench_common.h"

using namespace mbir;
using namespace mbir::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  auto ctx = BenchContext::fromCli(
      args, "Fig. 6: transformed-vs-naive speedup across chunk widths.");
  if (!ctx) return 0;

  const OwnedProblem problem = ctx->representativeCase();
  const Image2D golden = computeGolden(problem, ctx->golden_equits);

  // Naive baseline: default layout, float A from global memory (the
  // pre-transformation code of §4.1).
  OptimFlags naive;
  naive.transformed_layout = false;
  naive.quantize_amatrix = false;
  naive.amatrix_via_texture = false;
  const RunResult base = runGpu(problem, golden, paperTunables(), naive);
  std::printf("naive-layout baseline: %.4f s\n", base.modeled_seconds);

  // Transformed kernel with everything else identical to the baseline, so
  // the ratio isolates the layout transformation exactly as Fig. 6 does.
  OptimFlags transformed;
  transformed.quantize_amatrix = false;
  transformed.amatrix_via_texture = false;

  AsciiTable t({"chunk width", "modeled time (s)", "speedup vs naive",
                "padding ratio note"});
  const int widths[] = {8, 16, 24, 32, 48, 64, 96, 128};
  double best_speedup = 0.0;
  int best_w = 0;
  for (int w : widths) {
    GpuTunables tn = paperTunables();
    tn.chunk_width = w;
    const RunResult r = runGpu(problem, golden, tn, transformed);
    const double speedup = base.modeled_seconds / r.modeled_seconds;
    if (speedup > best_speedup) {
      best_speedup = speedup;
      best_w = w;
    }
    t.addRow({AsciiTable::fmt(w), AsciiTable::fmt(r.modeled_seconds, 4),
              AsciiTable::fmt(speedup, 2) + "x",
              w % 32 == 0 ? "warp multiple (aligned)" : "non-multiple"});
  }
  emit(t, "fig6_chunk_width", -1.0, ctx.get());
  std::printf("best width %d at %.2fx (paper: W=32 at 2.1x)\n", best_w,
              best_speedup);
  return 0;
}
