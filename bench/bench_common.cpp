#include "bench_common.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/error.h"
#include "core/simd.h"
#include "obs/json.h"

namespace mbir::bench {

namespace {
std::string g_output_dir = "results";
}  // namespace

const std::string& outputDir() { return g_output_dir; }

void setOutputDir(std::string dir) {
  g_output_dir = dir.empty() ? "." : std::move(dir);
}

std::unique_ptr<BenchContext> BenchContext::fromCli(CliArgs& args,
                                                    const std::string& summary,
                                                    int default_cases) {
  args.describe("size", "image size (pixels per side)", "128");
  args.describe("views", "number of view angles", "180");
  args.describe("channels", "detector channels", "256");
  args.describe("dose", "incident photons per measurement", "2e5");
  args.describe("cases", "number of suite cases", std::to_string(default_cases));
  args.describe("seed", "suite seed", "2026");
  args.describe("golden-equits", "equits for the golden reference", "40");
  args.describe("outdir", "directory for CSV/JSON artifacts", "results");
  if (args.helpRequested(summary)) return nullptr;
  setOutputDir(args.getString("outdir", outputDir()));

  auto ctx = std::make_unique<BenchContext>();
  ctx->cfg.geometry.image_size = args.getInt("size", 128);
  ctx->cfg.geometry.num_views = args.getInt("views", 180);
  ctx->cfg.geometry.num_channels = args.getInt("channels", 256);
  ctx->cfg.noise.i0 = args.getDouble("dose", 2e5);
  ctx->cfg.seed = std::uint64_t(args.getInt("seed", 2026));
  ctx->num_cases = args.getInt("cases", default_cases);
  ctx->golden_equits = args.getDouble("golden-equits", 40.0);

  std::printf("[bench] geometry %dx%d, %d views, %d channels; %d case(s)\n",
              ctx->cfg.geometry.image_size, ctx->cfg.geometry.image_size,
              ctx->cfg.geometry.num_views, ctx->cfg.geometry.num_channels,
              ctx->num_cases);
  ctx->suite = std::make_unique<Suite>(ctx->cfg);
  return ctx;
}

GpuTunables paperTunables() {
  GpuTunables t;
  t.sv.sv_side = 33;
  t.chunk_width = 32;
  t.threadblocks_per_sv = 40;
  t.threads_per_block = 256;
  t.svs_per_batch = 32;
  t.sv_fraction = 0.25;
  return t;
}

RunResult runGpu(const OwnedProblem& problem, const Image2D& golden,
                 const GpuTunables& tunables, const OptimFlags& flags) {
  RunConfig cfg;
  cfg.algorithm = Algorithm::kGpuIcd;
  cfg.gpu.tunables = tunables;
  cfg.gpu.flags = flags;
  return reconstruct(problem, golden, cfg);
}

void emit(const AsciiTable& table, const std::string& bench_name,
          double host_wall_seconds, const BenchContext* ctx,
          const std::vector<std::pair<std::string, double>>& numbers) {
  std::printf("\n%s\n", table.render().c_str());
  std::filesystem::create_directories(outputDir());
  const std::string path = outputDir() + "/" + bench_name + ".csv";
  table.writeCsv(path);
  std::printf("[bench] wrote %s\n", path.c_str());
  if (host_wall_seconds >= 0.0)
    std::printf("[bench] host_wall_seconds=%.3f\n", host_wall_seconds);

  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", "gpumbir.bench/1");
  w.kv("bench", bench_name);
  if (ctx) {
    w.key("config").beginObject();
    w.kv("image_size", ctx->cfg.geometry.image_size);
    w.kv("num_views", ctx->cfg.geometry.num_views);
    w.kv("num_channels", ctx->cfg.geometry.num_channels);
    w.kv("dose_i0", ctx->cfg.noise.i0);
    w.kv("cases", ctx->num_cases);
    w.kv("seed", std::uint64_t(ctx->cfg.seed));
    w.kv("golden_equits", ctx->golden_equits);
    w.kv("simd", resolveSimdOps(SimdMode::kDefault).name);
    w.endObject();
  }
  w.key("columns").beginArray();
  for (const std::string& h : table.headers()) w.value(h);
  w.endArray();
  w.key("rows").beginArray();
  for (const auto& row : table.rows()) {
    w.beginArray();
    for (const std::string& cell : row) w.value(cell);
    w.endArray();
  }
  w.endArray();
  if (host_wall_seconds >= 0.0) w.kv("host_wall_seconds", host_wall_seconds);
  w.key("numbers").beginObject();
  for (const auto& [k, v] : numbers) w.kv(k, v);
  w.endObject();
  w.endObject();

  const std::string json_path = outputDir() + "/BENCH_" + bench_name + ".json";
  std::ofstream out(json_path, std::ios::binary);
  MBIR_CHECK_MSG(out.good(), "cannot open bench report: " + json_path);
  out << w.str() << '\n';
  MBIR_CHECK_MSG(out.good(), "failed writing bench report: " + json_path);
  std::printf("[bench] wrote %s\n", json_path.c_str());
}

}  // namespace mbir::bench
