#include "bench_common.h"

#include <cstdio>

namespace mbir::bench {

std::unique_ptr<BenchContext> BenchContext::fromCli(CliArgs& args,
                                                    const std::string& summary,
                                                    int default_cases) {
  args.describe("size", "image size (pixels per side)", "128");
  args.describe("views", "number of view angles", "180");
  args.describe("channels", "detector channels", "256");
  args.describe("dose", "incident photons per measurement", "2e5");
  args.describe("cases", "number of suite cases", std::to_string(default_cases));
  args.describe("seed", "suite seed", "2026");
  args.describe("golden-equits", "equits for the golden reference", "40");
  if (args.helpRequested(summary)) return nullptr;

  auto ctx = std::make_unique<BenchContext>();
  ctx->cfg.geometry.image_size = args.getInt("size", 128);
  ctx->cfg.geometry.num_views = args.getInt("views", 180);
  ctx->cfg.geometry.num_channels = args.getInt("channels", 256);
  ctx->cfg.noise.i0 = args.getDouble("dose", 2e5);
  ctx->cfg.seed = std::uint64_t(args.getInt("seed", 2026));
  ctx->num_cases = args.getInt("cases", default_cases);
  ctx->golden_equits = args.getDouble("golden-equits", 40.0);

  std::printf("[bench] geometry %dx%d, %d views, %d channels; %d case(s)\n",
              ctx->cfg.geometry.image_size, ctx->cfg.geometry.image_size,
              ctx->cfg.geometry.num_views, ctx->cfg.geometry.num_channels,
              ctx->num_cases);
  ctx->suite = std::make_unique<Suite>(ctx->cfg);
  return ctx;
}

GpuTunables paperTunables() {
  GpuTunables t;
  t.sv.sv_side = 33;
  t.chunk_width = 32;
  t.threadblocks_per_sv = 40;
  t.threads_per_block = 256;
  t.svs_per_batch = 32;
  t.sv_fraction = 0.25;
  return t;
}

RunResult runGpu(const OwnedProblem& problem, const Image2D& golden,
                 const GpuTunables& tunables, const OptimFlags& flags) {
  RunConfig cfg;
  cfg.algorithm = Algorithm::kGpuIcd;
  cfg.gpu.tunables = tunables;
  cfg.gpu.flags = flags;
  return reconstruct(problem, golden, cfg);
}

void emit(const AsciiTable& table, const std::string& bench_name,
          double host_wall_seconds) {
  std::printf("\n%s\n", table.render().c_str());
  const std::string path = bench_name + ".csv";
  table.writeCsv(path);
  std::printf("[bench] wrote %s\n", path.c_str());
  if (host_wall_seconds >= 0.0)
    std::printf("[bench] host_wall_seconds=%.3f\n", host_wall_seconds);
}

}  // namespace mbir::bench
