// Table 2 — impact of shrinking the A-matrix (float -> uint8) and reading
// it via the unified L1/texture cache.
//
// Paper (Titan X):
//   (Global, float)  0.48 s
//   (Texture, float) 0.45 s   519 GB/s tex, 41.78% hit
//   (Global, char)   0.44 s
//   (Texture, char)  0.41 s   702 GB/s tex, 60.36% hit
// Shape target: texture beats global, char beats float, (tex, char) best.
#include <cstdio>

#include "bench_common.h"
#include "gsim/timing.h"

using namespace mbir;
using namespace mbir::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  auto ctx = BenchContext::fromCli(
      args, "Table 2: A-matrix memory path (global/texture) x type (float/char).");
  if (!ctx) return 0;

  const OwnedProblem problem = ctx->representativeCase();
  const Image2D golden = computeGolden(problem, ctx->golden_equits);

  struct Config {
    const char* name;
    bool texture;
    bool quantize;
    const char* paper;
  };
  const Config configs[] = {
      {"(Global, float)", false, false, "0.48 s"},
      {"(Texture, float)", true, false, "0.45 s, 519 GB/s (41.78%)"},
      {"(Global, char)", false, true, "0.44 s"},
      {"(Texture, char)", true, true, "0.41 s, 702 GB/s (60.36%)"},
  };

  AsciiTable t({"A-matrix from (memory, type)", "modeled time (s)",
                "tex bandwidth (GB/s)", "tex hit rate (%)", "equits",
                "paper"});
  double best = 1e30, worst = 0.0;
  for (const Config& c : configs) {
    OptimFlags flags;
    flags.amatrix_via_texture = c.texture;
    flags.quantize_amatrix = c.quantize;
    const RunResult r = runGpu(problem, golden, paperTunables(), flags);
    const auto bw = gsim::bandwidthReport(r.gpu_stats->kernel_stats,
                                          r.modeled_seconds);
    best = std::min(best, r.modeled_seconds);
    worst = std::max(worst, r.modeled_seconds);
    t.addRow({c.name, AsciiTable::fmt(r.modeled_seconds, 4),
              c.texture ? AsciiTable::fmt(bw.tex_gbs, 0) : "-",
              c.texture ? AsciiTable::fmt(bw.tex_hit_rate * 100.0, 1) : "-",
              AsciiTable::fmt(r.equits, 1), c.paper});
  }
  emit(t, "table2_amatrix", -1.0, ctx.get());
  std::printf("best/worst config ratio: %.2fx (paper: 0.48/0.41 = 1.17x)\n",
              worst / best);
  return 0;
}
