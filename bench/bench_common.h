// Shared infrastructure for the paper-reproduction benches.
//
// Every bench binary (one per table/figure of the PPoPP'17 evaluation)
// builds its workload through BenchContext: a Suite at a CLI-configurable
// geometry (default 128^2, 180 views, 256 channels — a scaled instance of
// the paper's 512^2 x 720 x 1024; see DESIGN.md §1), golden images per the
// paper's protocol (40-equit sequential ICD), and convergence to
// RMSE < 10 HU. Results print as ASCII tables with the paper's published
// numbers alongside, and are also written as CSV.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cli.h"
#include "core/table.h"
#include "recon/reconstructor.h"
#include "recon/suite.h"

namespace mbir::bench {

struct BenchContext {
  SuiteConfig cfg;
  std::unique_ptr<Suite> suite;
  int num_cases = 1;
  double golden_equits = 40.0;

  /// Parse the common options (size/views/channels/dose/cases/seed) and
  /// build the suite. Returns nullptr if --help was handled.
  static std::unique_ptr<BenchContext> fromCli(CliArgs& args,
                                               const std::string& summary,
                                               int default_cases = 1);

  OwnedProblem makeCase(int index) const { return suite->makeCase(index); }

  /// The "representative image" the paper tunes parameters on (§5.2).
  OwnedProblem representativeCase() const { return suite->makeCase(0); }
};

/// Directory emit() writes CSV/JSON artifacts into (created on demand).
/// Defaults to "results" — running a bench from the repo root refreshes the
/// committed reproduction results in results/. Overridable per run with
/// --outdir (parsed by BenchContext::fromCli) or directly here.
const std::string& outputDir();
void setOutputDir(std::string dir);

/// Paper's Table-1 GPU-ICD tunables (SV side 33, W 32, 40 TB/SV, 256
/// threads, batch 32, 25%).
GpuTunables paperTunables();

/// Reconstruct with GPU-ICD at given tunables/flags to the 10 HU criterion;
/// wraps recon::reconstruct with the right RunConfig.
RunResult runGpu(const OwnedProblem& problem, const Image2D& golden,
                 const GpuTunables& tunables, const OptimFlags& flags = {});

/// Print the table, write it next to the binary as <name>.csv, and write a
/// machine-readable BENCH_<name>.json (schema "gpumbir.bench/1": bench
/// name, suite config when `ctx` is given, the table's columns/rows, the
/// real host wall-clock when >= 0, and any extra named scalar measurements).
/// When `host_wall_seconds` >= 0 it is also printed as a
/// "host_wall_seconds=" line for quick scraping.
void emit(const AsciiTable& table, const std::string& bench_name,
          double host_wall_seconds = -1.0, const BenchContext* ctx = nullptr,
          const std::vector<std::pair<std::string, double>>& numbers = {});

}  // namespace mbir::bench
