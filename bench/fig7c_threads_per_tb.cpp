// Fig. 7c — threads per threadblock (exploited intra-voxel parallelism):
// best at 256; 64 threads (full occupancy but many resident blocks) causes
// L2 conflicts; 384 lowers occupancy; 512 adds reduction/imbalance cost.
#include <cstdio>

#include "bench_common.h"
#include "gsim/occupancy.h"

using namespace mbir;
using namespace mbir::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  auto ctx = BenchContext::fromCli(
      args, "Fig. 7c: threads per threadblock (intra-voxel parallelism).");
  if (!ctx) return 0;

  const OwnedProblem problem = ctx->representativeCase();
  const Image2D golden = computeGolden(problem, ctx->golden_equits);

  AsciiTable t({"threads/block", "modeled time (s)", "occupancy (%)",
                "equits"});
  double best = 1e30;
  int best_threads = 0;
  for (int threads : {64, 128, 192, 256, 384, 512}) {
    GpuTunables tn = paperTunables();
    tn.threads_per_block = threads;
    const RunResult r = runGpu(problem, golden, tn);
    const KernelFootprint fp = updateKernelFootprint(OptimFlags{});
    const auto occ = gsim::computeOccupancy(
        gsim::titanXMaxwell(),
        {.threads_per_block = threads, .regs_per_thread = fp.regs_per_thread,
         .smem_per_block_bytes = fp.smem_bytes_per_thread * std::size_t(threads)});
    if (r.modeled_seconds < best) {
      best = r.modeled_seconds;
      best_threads = threads;
    }
    t.addRow({AsciiTable::fmt(threads), AsciiTable::fmt(r.modeled_seconds, 4),
              AsciiTable::fmt(occ.fraction * 100.0, 1),
              AsciiTable::fmt(r.equits, 2)});
  }
  emit(t, "fig7c_threads_per_tb", -1.0, ctx.get());
  std::printf("best threads/block: %d (paper: 256)\n", best_threads);
  return 0;
}
